//! ROP gadget discovery.
//!
//! A gadget is a short instruction sequence ending in `ret`, found by
//! decoding the text segment **from every byte offset** — variable-
//! length encoding means unintended instruction streams hide inside
//! intended ones (Shacham's "geometry of innocent flesh on the bone",
//! the paper's reference \[2\]).

use std::fmt;

use swsec_vm::isa::{Instr, Reg};

/// A discovered gadget: its address and decoded instructions (the last
/// is always `ret`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// Address of the first instruction.
    pub addr: u32,
    /// The instructions, ending with `ret`.
    pub instrs: Vec<Instr>,
}

impl Gadget {
    /// Whether the gadget is exactly `pop <reg>; ret` — the workhorse
    /// for loading attacker-controlled words into registers.
    pub fn is_pop_ret(&self, reg: Reg) -> bool {
        self.instrs.len() == 2 && self.instrs[0] == Instr::Pop(reg)
    }
}

impl fmt::Display for Gadget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}:", self.addr)?;
        for i in &self.instrs {
            write!(f, " {i};")?;
        }
        Ok(())
    }
}

/// Scans an image for gadgets.
#[derive(Debug)]
pub struct GadgetFinder {
    gadgets: Vec<Gadget>,
}

impl GadgetFinder {
    /// Sweeps `code` (loaded at `base`) from every byte offset, keeping
    /// sequences of at most `max_len` instructions that end in `ret`.
    pub fn scan(code: &[u8], base: u32, max_len: usize) -> GadgetFinder {
        let mut gadgets = Vec::new();
        for start in 0..code.len() {
            let mut offset = start;
            let mut instrs = Vec::new();
            while instrs.len() < max_len && offset < code.len() {
                match Instr::decode(&code[offset..]) {
                    Ok((instr, len)) => {
                        let is_ret = instr == Instr::Ret;
                        // Other control transfers end the sequence without
                        // making it a gadget (control escapes).
                        let is_transfer = instr.is_control_transfer();
                        instrs.push(instr);
                        offset += len;
                        if is_ret {
                            gadgets.push(Gadget {
                                addr: base + start as u32,
                                instrs: instrs.clone(),
                            });
                            break;
                        }
                        if is_transfer {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        gadgets.sort_by_key(|g| (g.instrs.len(), g.addr));
        gadgets.dedup();
        GadgetFinder { gadgets }
    }

    /// All discovered gadgets, shortest first.
    pub fn gadgets(&self) -> &[Gadget] {
        &self.gadgets
    }

    /// The address of a `pop <reg>; ret` gadget, if one exists.
    pub fn pop_ret(&self, reg: Reg) -> Option<u32> {
        self.gadgets
            .iter()
            .find(|g| g.is_pop_ret(reg))
            .map(|g| g.addr)
    }

    /// The address of a bare `ret` gadget (a ROP no-op / stack pivot
    /// landing pad), if one exists.
    pub fn ret(&self) -> Option<u32> {
        self.gadgets
            .iter()
            .find(|g| g.instrs.len() == 1)
            .map(|g| g.addr)
    }

    /// Gadgets whose first instruction satisfies `pred`.
    pub fn matching<F>(&self, pred: F) -> Vec<&Gadget>
    where
        F: Fn(&Instr) -> bool,
    {
        self.gadgets
            .iter()
            .filter(|g| g.instrs.first().is_some_and(&pred))
            .collect()
    }
}

/// Finds the address of the first instruction inside `code` (loaded at
/// `base`) satisfying `pred`, by linear sweep from offset 0 — how an
/// attacker locates a useful interior instruction such as the
/// `tries_left = 3` store of the paper's Figure 4 attack.
pub fn find_instr_addr<F>(code: &[u8], base: u32, pred: F) -> Option<u32>
where
    F: Fn(&Instr) -> bool,
{
    let mut offset = 0usize;
    while offset < code.len() {
        match Instr::decode(&code[offset..]) {
            Ok((instr, len)) => {
                if pred(&instr) {
                    return Some(base + offset as u32);
                }
                offset += len;
            }
            Err(_) => offset += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_vm::isa::Reg;

    fn encode_all(instrs: &[Instr]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in instrs {
            i.encode(&mut out);
        }
        out
    }

    #[test]
    fn finds_intended_pop_ret() {
        let code = encode_all(&[
            Instr::Nop,
            Instr::Pop(Reg::R3),
            Instr::Ret,
            Instr::Halt,
        ]);
        let finder = GadgetFinder::scan(&code, 0x1000, 4);
        assert_eq!(finder.pop_ret(Reg::R3), Some(0x1001));
        assert!(finder.ret().is_some());
    }

    #[test]
    fn finds_unintended_gadget_inside_immediate() {
        // movi r0, imm where the immediate bytes encode `pop r1; ret`.
        let hidden = encode_all(&[Instr::Pop(Reg::R1), Instr::Ret]);
        assert_eq!(hidden.len(), 3);
        let imm = u32::from_le_bytes([hidden[0], hidden[1], hidden[2], 0x00]);
        let code = encode_all(&[Instr::MovI { dst: Reg::R0, imm }, Instr::Halt]);
        let finder = GadgetFinder::scan(&code, 0x2000, 4);
        // The intended stream has no pop/ret at all, yet the gadget exists
        // at the misaligned offset.
        assert_eq!(finder.pop_ret(Reg::R1), Some(0x2002));
    }

    #[test]
    fn sequences_crossing_other_transfers_are_not_gadgets() {
        let code = encode_all(&[Instr::Pop(Reg::R0), Instr::Jmp(0x9999), Instr::Ret]);
        let finder = GadgetFinder::scan(&code, 0, 4);
        // `pop r0; jmp; …` is cut at the jmp; the bare ret still counts.
        assert!(finder.pop_ret(Reg::R0).is_none());
        assert!(finder.ret().is_some());
    }

    #[test]
    fn max_len_bounds_gadget_size() {
        let code = encode_all(&[
            Instr::Nop,
            Instr::Nop,
            Instr::Nop,
            Instr::Nop,
            Instr::Ret,
        ]);
        let finder = GadgetFinder::scan(&code, 0, 2);
        // Only windows of ≤2 instructions survive: `nop; ret` and `ret`.
        assert!(finder.gadgets().iter().all(|g| g.instrs.len() <= 2));
        assert!(!finder.gadgets().is_empty());
    }

    #[test]
    fn find_instr_addr_locates_interior_store() {
        let code = encode_all(&[
            Instr::Enter(8),
            Instr::MovI { dst: Reg::R0, imm: 3 },
            Instr::Store { base: Reg::R1, disp: 0, src: Reg::R0 },
            Instr::Leave,
            Instr::Ret,
        ]);
        let addr = find_instr_addr(&code, 0x5000, |i| {
            matches!(i, Instr::MovI { imm: 3, .. })
        });
        assert_eq!(addr, Some(0x5005));
    }

    #[test]
    fn gadget_display_shows_instructions() {
        let g = Gadget {
            addr: 0x1234,
            instrs: vec![Instr::Pop(Reg::R0), Instr::Ret],
        };
        assert_eq!(g.to_string(), "0x00001234: pop r0; ret;");
    }
}
