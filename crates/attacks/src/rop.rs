//! Return-oriented-programming chains and return-to-libc frames.
//!
//! Once the saved return address is under the attacker's control and
//! DEP forbids executing injected data, the attacker strings together
//! *existing* code. A [`RopChain`] is the stack image that drives such
//! an execution: each `ret` consumes the next word.

use crate::gadgets::GadgetFinder;
use swsec_vm::isa::Reg;

/// Builder for the stack words of a ROP chain.
///
/// The chain is laid out so the *first* pushed word is consumed by the
/// first `ret` — i.e. words appear in execution order.
#[derive(Debug, Clone, Default)]
pub struct RopChain {
    words: Vec<u32>,
}

impl RopChain {
    /// Starts an empty chain.
    pub fn new() -> RopChain {
        RopChain::default()
    }

    /// Appends a raw word (a gadget address or immediate datum).
    pub fn word(mut self, w: u32) -> RopChain {
        self.words.push(w);
        self
    }

    /// Appends a `pop <reg>; ret` gadget followed by `value`, loading
    /// `value` into `reg` when the chain runs.
    ///
    /// Returns `None` when the binary contains no such gadget.
    pub fn set_reg(self, finder: &GadgetFinder, reg: Reg, value: u32) -> Option<RopChain> {
        let gadget = finder.pop_ret(reg)?;
        Some(self.word(gadget).word(value))
    }

    /// Appends a classic return-to-libc frame: "return" into `function`
    /// with `args` on the stack and `ret_after` as the address the
    /// function will return to when done.
    ///
    /// Layout (matching the callee's `enter`-based prologue, which
    /// expects `[sp] = return address, [sp+4] = arg0, …` on entry):
    /// `function, ret_after, arg0, arg1, …`.
    pub fn call(mut self, function: u32, ret_after: u32, args: &[u32]) -> RopChain {
        self.words.push(function);
        self.words.push(ret_after);
        self.words.extend_from_slice(args);
        self
    }

    /// The chain as stack words, in execution order.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Number of words in the chain.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Serializes the chain to bytes (little-endian words) for embedding
    /// in an overflow payload.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_vm::isa::Instr;

    fn encode_all(instrs: &[Instr]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in instrs {
            i.encode(&mut out);
        }
        out
    }

    #[test]
    fn set_reg_uses_pop_ret_gadget() {
        let code = encode_all(&[Instr::Pop(Reg::R2), Instr::Ret]);
        let finder = GadgetFinder::scan(&code, 0x7000, 3);
        let chain = RopChain::new()
            .set_reg(&finder, Reg::R2, 0x4242_4242)
            .unwrap();
        assert_eq!(chain.words(), &[0x7000, 0x4242_4242]);
    }

    #[test]
    fn set_reg_fails_without_gadget() {
        let code = encode_all(&[Instr::Nop, Instr::Halt]);
        let finder = GadgetFinder::scan(&code, 0, 3);
        assert!(RopChain::new().set_reg(&finder, Reg::R0, 1).is_none());
    }

    #[test]
    fn call_frame_layout() {
        let chain = RopChain::new().call(0x1111, 0x2222, &[7, 8]);
        assert_eq!(chain.words(), &[0x1111, 0x2222, 7, 8]);
    }

    #[test]
    fn build_is_little_endian() {
        let bytes = RopChain::new().word(0x0804_840a).build();
        assert_eq!(bytes, vec![0x0a, 0x84, 0x04, 0x08]);
    }

    #[test]
    fn chains_execute_on_the_machine() {
        use swsec_vm::mem::Perm;
        use swsec_vm::prelude::*;

        // Text: f(x) = exits with x+1;  gadget: pop r5; ret.
        let text_base = 0x1000u32;
        let image = swsec_asm::assemble(&format!(
            ".org {text_base:#x}\n\
             f:  enter 0\n\
                 load r0, [bp+8]\n\
                 addi r0, 1\n\
                 sys 0\n\
             gadget: pop r5\n\
                 ret\n"
        ))
        .unwrap();
        let finder = GadgetFinder::scan(&image.bytes, text_base, 3);
        let f = image.label("f").unwrap();
        // Chain: load 0x55 into r5 (gratuitous), then call f(41).
        let chain = RopChain::new()
            .set_reg(&finder, Reg::R5, 0x55)
            .unwrap()
            .call(f, 0xdead_0000, &[41]);

        let mut m = Machine::new();
        m.mem_mut().map(text_base, 0x1000, Perm::RX).unwrap();
        m.mem_mut().poke_bytes(text_base, &image.bytes).unwrap();
        m.mem_mut().map(0x8000, 0x1000, Perm::RW).unwrap();
        // Plant the chain on the stack and "return" into it, as if a
        // smashed frame just executed `ret`.
        m.mem_mut().poke_bytes(0x8800, &chain.build()).unwrap();
        m.set_reg(Reg::Sp, 0x8800 + 4);
        m.set_ip(chain.words()[0]);
        assert_eq!(m.run(1_000), RunOutcome::Halted(42));
        assert_eq!(m.reg(Reg::R5), 0x55);
    }
}
