//! Attack payload construction.
//!
//! An I/O-attacker payload is just bytes, but bytes with structure: a
//! filler region that soaks up the buffer, then carefully placed words
//! that land on the saved base pointer, the saved return address, or
//! other targets. [`Payload`] is a small builder for that structure,
//! and [`Payload::smash`] computes the offsets from a compiled
//! function's [`FrameLayout`] so experiments never hard-code distances.

use swsec_minc::FrameLayout;

/// Byte-payload builder.
///
/// # Examples
///
/// ```
/// use swsec_attacks::payload::Payload;
///
/// let bytes = Payload::new()
///     .pad(16, b'A')
///     .word(0xdead_beef)
///     .build();
/// assert_eq!(bytes.len(), 20);
/// assert_eq!(&bytes[16..], &0xdead_beefu32.to_le_bytes());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Payload {
    bytes: Vec<u8>,
}

impl Payload {
    /// Starts an empty payload.
    pub fn new() -> Payload {
        Payload::default()
    }

    /// Appends `n` copies of `fill`.
    pub fn pad(mut self, n: usize, fill: u8) -> Payload {
        self.bytes.extend(std::iter::repeat_n(fill, n));
        self
    }

    /// Appends raw bytes.
    pub fn bytes(mut self, data: &[u8]) -> Payload {
        self.bytes.extend_from_slice(data);
        self
    }

    /// Appends a little-endian 32-bit word (an address, typically).
    pub fn word(mut self, w: u32) -> Payload {
        self.bytes.extend_from_slice(&w.to_le_bytes());
        self
    }

    /// Appends `n` copies of a little-endian word (a ROP sled or
    /// repeated guess).
    pub fn repeat_word(mut self, w: u32, n: usize) -> Payload {
        for _ in 0..n {
            self.bytes.extend_from_slice(&w.to_le_bytes());
        }
        self
    }

    /// Pads with `fill` until the payload is exactly `len` bytes long.
    ///
    /// # Panics
    ///
    /// Panics if the payload is already longer than `len`.
    pub fn pad_to(mut self, len: usize, fill: u8) -> Payload {
        assert!(
            self.bytes.len() <= len,
            "payload already {} bytes, cannot pad to {len}",
            self.bytes.len()
        );
        while self.bytes.len() < len {
            self.bytes.push(fill);
        }
        self
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finalizes the payload.
    pub fn build(self) -> Vec<u8> {
        self.bytes
    }

    /// Builds a classic stack-smash for an overflow of the local array
    /// `buf_name` in a function with layout `frame`: filler up to the
    /// saved base pointer, a plausible saved-bp word, then `new_ret`
    /// replacing the saved return address.
    ///
    /// Returns `None` if `buf_name` is not a local of that frame.
    pub fn smash(frame: &FrameLayout, buf_name: &str, new_ret: u32) -> Option<Payload> {
        let slot = frame
            .locals
            .iter()
            .find(|(name, _)| name == buf_name)
            .map(|(_, slot)| slot)?;
        // Buffer start is at bp+offset (offset < 0); the saved bp sits at
        // bp+0 and the return address at bp+4.
        let to_saved_bp = (-slot.offset) as usize;
        Some(
            Payload::new()
                .pad(to_saved_bp, b'A')
                .word(0xbfff_0000) // plausible (but junk) saved bp
                .word(new_ret),
        )
    }

    /// Like [`Payload::smash`], but also embeds `shellcode` at the start
    /// of the buffer and points the return address back *into the
    /// buffer* — direct code injection. `buf_addr` is the run-time
    /// address of the buffer (known, guessed, or leaked).
    pub fn smash_with_shellcode(
        frame: &FrameLayout,
        buf_name: &str,
        buf_addr: u32,
        shellcode: &[u8],
    ) -> Option<Payload> {
        let slot = frame
            .locals
            .iter()
            .find(|(name, _)| name == buf_name)
            .map(|(_, slot)| slot)?;
        let to_saved_bp = (-slot.offset) as usize;
        if shellcode.len() > to_saved_bp {
            return None; // shellcode must fit below the saved registers
        }
        Some(
            Payload::new()
                .bytes(shellcode)
                .pad(to_saved_bp - shellcode.len(), b'A')
                .word(0xbfff_0000)
                .word(buf_addr),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_minc::{compile, parse, CompileOptions};

    fn vulnerable_frame() -> FrameLayout {
        let unit = parse(
            "void f(int fd) { char buf[16]; read(fd, buf, 64); }\n\
             void main() { f(0); }",
        )
        .unwrap();
        let prog = compile(&unit, &CompileOptions::default()).unwrap();
        prog.frames["f"].clone()
    }

    #[test]
    fn builder_concatenates_parts() {
        let p = Payload::new().pad(2, 0x41).word(0x01020304).bytes(&[9]).build();
        assert_eq!(p, vec![0x41, 0x41, 0x04, 0x03, 0x02, 0x01, 9]);
    }

    #[test]
    fn pad_to_extends_exactly() {
        let p = Payload::new().bytes(&[1, 2]).pad_to(5, 0).build();
        assert_eq!(p, vec![1, 2, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot pad")]
    fn pad_to_rejects_shrinking() {
        let _ = Payload::new().pad(8, 0).pad_to(4, 0);
    }

    #[test]
    fn smash_places_return_address_after_frame() {
        let frame = vulnerable_frame();
        let p = Payload::smash(&frame, "buf", 0xcafe_babe).unwrap().build();
        // 16 filler + 4 saved bp + 4 return address.
        assert_eq!(p.len(), 24);
        assert_eq!(&p[20..], &0xcafe_babeu32.to_le_bytes());
    }

    #[test]
    fn smash_unknown_buffer_is_none() {
        let frame = vulnerable_frame();
        assert!(Payload::smash(&frame, "nope", 0).is_none());
    }

    #[test]
    fn shellcode_payload_points_into_buffer() {
        let frame = vulnerable_frame();
        let code = vec![0x90; 6];
        let p = Payload::smash_with_shellcode(&frame, "buf", 0xbfff_ef00, &code)
            .unwrap()
            .build();
        assert_eq!(&p[..6], &code[..]);
        assert_eq!(&p[20..24], &0xbfff_ef00u32.to_le_bytes());
    }

    #[test]
    fn oversized_shellcode_rejected() {
        let frame = vulnerable_frame();
        let code = vec![0x90; 64];
        assert!(Payload::smash_with_shellcode(&frame, "buf", 0, &code).is_none());
    }

    #[test]
    fn repeat_word_builds_sleds() {
        let p = Payload::new().repeat_word(0x1111_2222, 3).build();
        assert_eq!(p.len(), 12);
        assert_eq!(&p[4..8], &0x1111_2222u32.to_le_bytes());
    }
}
