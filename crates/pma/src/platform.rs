//! The platform model: master key, module measurement, key derivation,
//! module loading, and simulated non-volatile counters.
//!
//! This is the "hardware" of a Protected Module Architecture in the
//! sense of Sancus / Intel SGX: a master key that never leaves the
//! platform, a measurement (hash) taken of each module's code as it is
//! loaded, and a per-module key derived from both. Software — including
//! the operating system — cannot read the master key; it can only ask
//! the platform to load modules and, per §IV-C, *may tamper with the
//! module image before loading*. Attestation exists to catch exactly
//! that.

use swsec_crypto::hmac::hkdf_sha256;
use swsec_crypto::sha256::Sha256;
use swsec_vm::cpu::Machine;
use swsec_vm::mem::Perm;
use swsec_vm::policy::{ProtectionMap, ReentryPolicy};

use crate::module::ModuleImage;

/// A module measurement: the SHA-256 of its code segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Measures an image's code segment.
    pub fn of(image: &ModuleImage) -> Measurement {
        Measurement(Sha256::digest(image.code()))
    }
}

/// A module-private key, derived from the platform master key and the
/// module's measurement. Two platforms (different master keys) or two
/// module versions (different measurements) get different keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleKey(pub [u8; 32]);

/// Identifier of a non-volatile monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Errors from platform operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for PlatformError {}

/// A module as loaded by the platform: placement plus derived identity.
#[derive(Debug, Clone)]
pub struct LoadedModule {
    /// The measurement taken at load time (of the bytes actually
    /// loaded, tampering included).
    pub measurement: Measurement,
    /// The key the platform derived for this module.
    pub key: ModuleKey,
    /// Code range start.
    pub code_base: u32,
    /// Code length in bytes.
    pub code_len: u32,
    /// Data range start.
    pub data_base: u32,
    /// Entry points (absolute addresses).
    pub entries: Vec<u32>,
    /// Export names parallel to `entries`.
    pub exports: Vec<String>,
}

impl LoadedModule {
    /// Absolute address of the export named `name`.
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] naming the export if absent.
    pub fn export(&self, name: &str) -> Result<u32, PlatformError> {
        self.exports
            .iter()
            .position(|e| e == name)
            .map(|i| self.entries[i])
            .ok_or_else(|| PlatformError {
                message: format!("module has no export `{name}`"),
            })
    }
}

/// The trusted platform: master key, measurement logic and NVRAM.
///
/// # Examples
///
/// ```
/// use swsec_pma::platform::Platform;
///
/// let platform = Platform::new([7u8; 32]);
/// let counter = { let mut p = platform; p.alloc_counter() };
/// # let _ = counter;
/// ```
#[derive(Debug)]
pub struct Platform {
    master_key: [u8; 32],
    counters: Vec<u64>,
}

impl Platform {
    /// Creates a platform with the given master key (burned in at
    /// manufacturing time; in reality derived from a PUF or fuses).
    pub fn new(master_key: [u8; 32]) -> Platform {
        Platform {
            master_key,
            counters: Vec::new(),
        }
    }

    /// Derives the module key for a given measurement. Only the platform
    /// can do this — the derivation consumes the master key.
    pub fn derive_key(&self, measurement: Measurement) -> ModuleKey {
        let okm = hkdf_sha256(
            b"swsec-pma-module-key",
            &self.master_key,
            &measurement.0,
            32,
        );
        ModuleKey(okm.try_into().expect("fixed length"))
    }

    /// Loads `image` into `machine` as a protected module: maps its
    /// segments, installs (or extends) the machine's protection map,
    /// measures the code and derives the module key.
    ///
    /// `reentry` selects how strictly returns into the module are
    /// policed (see [`ReentryPolicy`]).
    ///
    /// # Errors
    ///
    /// Returns a [`PlatformError`] when the image overlaps existing
    /// mappings.
    pub fn load_module(
        &mut self,
        machine: &mut Machine,
        image: &ModuleImage,
        reentry: ReentryPolicy,
    ) -> Result<LoadedModule, PlatformError> {
        let map_err = |e: swsec_vm::mem::MapError| PlatformError {
            message: format!("module load failed: {e}"),
        };
        let poke_err = |e: swsec_vm::mem::MemError| PlatformError {
            message: format!("module load failed: {e}"),
        };
        machine
            .mem_mut()
            .map(image.code_base(), image.code().len().max(1) as u32, Perm::RX)
            .map_err(map_err)?;
        machine
            .mem_mut()
            .poke_bytes(image.code_base(), image.code())
            .map_err(poke_err)?;
        machine
            .mem_mut()
            .map(image.data_base(), image.data().len().max(1) as u32, Perm::RW)
            .map_err(map_err)?;
        machine
            .mem_mut()
            .poke_bytes(image.data_base(), image.data())
            .map_err(poke_err)?;

        // Extend the machine's protection map with this module.
        let mut regions = machine
            .protection()
            .map(|p| p.regions().to_vec())
            .unwrap_or_default();
        regions.push(image.region());
        machine.set_protection(Some(ProtectionMap::new(regions).with_reentry(reentry)));

        let metrics = swsec_obs::metrics::global();
        metrics.counter("pma.modules_loaded", 1);
        metrics.observe("pma.module_code_bytes", image.code().len() as u64);

        let measurement = Measurement::of(image);
        let key = self.derive_key(measurement);
        Ok(LoadedModule {
            measurement,
            key,
            code_base: image.code_base(),
            code_len: image.code().len() as u32,
            data_base: image.data_base(),
            entries: image
                .entry_offsets()
                .iter()
                .map(|&o| image.code_base() + o)
                .collect(),
            exports: image.exports().to_vec(),
        })
    }

    /// Allocates a fresh non-volatile monotonic counter, initialized to
    /// zero.
    pub fn alloc_counter(&mut self) -> CounterId {
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Reads a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Increments a counter and returns the new value. Monotonic: there
    /// is no API to decrease or reset it.
    pub fn bump_counter(&mut self, id: CounterId) -> u64 {
        self.counters[id.0] += 1;
        self.counters[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleImage;

    fn tiny_image() -> ModuleImage {
        ModuleImage::from_raw(
            vec![0x22; 16], // sixteen `ret` bytes
            vec![0u8; 8],
            0x0a00_0000,
            0x0a10_0000,
            vec![0],
        )
    }

    #[test]
    fn same_code_same_key_across_loads() {
        let mut platform = Platform::new([1u8; 32]);
        let image = tiny_image();
        let mut m1 = Machine::new();
        let mut m2 = Machine::new();
        let a = platform
            .load_module(&mut m1, &image, ReentryPolicy::EntryPointsOnly)
            .unwrap();
        let b = platform
            .load_module(&mut m2, &image, ReentryPolicy::EntryPointsOnly)
            .unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.measurement, b.measurement);
    }

    #[test]
    fn tampered_code_derives_a_different_key() {
        let mut platform = Platform::new([1u8; 32]);
        let image = tiny_image();
        let mut tampered = image.clone();
        tampered.tamper_code_bit(3, 1);
        let mut m1 = Machine::new();
        let mut m2 = Machine::new();
        let honest = platform
            .load_module(&mut m1, &image, ReentryPolicy::EntryPointsOnly)
            .unwrap();
        let evil = platform
            .load_module(&mut m2, &tampered, ReentryPolicy::EntryPointsOnly)
            .unwrap();
        assert_ne!(honest.key, evil.key);
        assert_ne!(honest.measurement, evil.measurement);
    }

    #[test]
    fn different_platforms_derive_different_keys() {
        let p1 = Platform::new([1u8; 32]);
        let p2 = Platform::new([2u8; 32]);
        let m = Measurement(Sha256::digest(b"module"));
        assert_ne!(p1.derive_key(m), p2.derive_key(m));
    }

    #[test]
    fn loading_installs_protection() {
        let mut platform = Platform::new([0u8; 32]);
        let image = tiny_image();
        let mut m = Machine::new();
        platform
            .load_module(&mut m, &image, ReentryPolicy::EntryPointsOnly)
            .unwrap();
        let pma = m.protection().expect("protection installed");
        assert_eq!(pma.regions().len(), 1);
        assert!(!pma.data_access_allowed(0x1000, 0x0a10_0000));
    }

    #[test]
    fn counters_are_monotonic() {
        let mut platform = Platform::new([0u8; 32]);
        let c = platform.alloc_counter();
        assert_eq!(platform.counter(c), 0);
        assert_eq!(platform.bump_counter(c), 1);
        assert_eq!(platform.bump_counter(c), 2);
        assert_eq!(platform.counter(c), 2);
    }

    #[test]
    fn exports_resolve() {
        let mut platform = Platform::new([0u8; 32]);
        let image = tiny_image();
        let mut m = Machine::new();
        let loaded = platform
            .load_module(&mut m, &image, ReentryPolicy::EntryPointsOnly)
            .unwrap();
        assert_eq!(loaded.export("entry0").unwrap(), 0x0a00_0000);
        assert!(loaded.export("absent").is_err());
    }
}
