//! Remote attestation (§IV-C).
//!
//! After loading, a module proves to a remote party that *an unmodified
//! version of it* is running in protected memory. The mechanism is the
//! symmetric-key scheme of Sancus-class architectures: the verifier was
//! provisioned (out of band) with the key the platform derives for the
//! *expected* measurement; the loaded module holds the key the platform
//! derived for its *actual* measurement. A MAC over a verifier-chosen
//! nonce therefore verifies exactly when the loaded code is the expected
//! code — an OS that modified the module before loading it left the
//! module with the wrong key.

use swsec_crypto::hmac::{ct_eq, hmac_sha256};

use crate::platform::{Measurement, ModuleKey};

/// An attestation report: MAC over the nonce and optional report data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// The nonce being answered.
    pub nonce: [u8; 16],
    /// Application data bound into the report (e.g. a public key or an
    /// output commitment). May be empty.
    pub data: Vec<u8>,
    /// `HMAC(module_key, nonce ‖ data)`.
    pub mac: [u8; 32],
}

/// Produces an attestation report using the module's platform-derived
/// key. Runs *inside* the module (the key never leaves it).
pub fn attest(key: &ModuleKey, nonce: [u8; 16], data: &[u8]) -> AttestationReport {
    let mut input = Vec::with_capacity(16 + data.len());
    input.extend_from_slice(&nonce);
    input.extend_from_slice(data);
    AttestationReport {
        nonce,
        data: data.to_vec(),
        mac: hmac_sha256(&key.0, &input),
    }
}

/// The remote verifier: knows which measurement it expects and the key
/// the platform would derive for that measurement.
#[derive(Debug, Clone)]
pub struct Verifier {
    expected_measurement: Measurement,
    expected_key: ModuleKey,
    used_nonces: Vec<[u8; 16]>,
}

impl Verifier {
    /// Creates a verifier provisioned with the expected measurement and
    /// the corresponding module key.
    pub fn new(expected_measurement: Measurement, expected_key: ModuleKey) -> Verifier {
        Verifier {
            expected_measurement,
            expected_key,
            used_nonces: Vec::new(),
        }
    }

    /// The measurement this verifier expects.
    pub fn expected_measurement(&self) -> Measurement {
        self.expected_measurement
    }

    /// Issues a fresh nonce derived from a caller-supplied random seed.
    pub fn challenge(&mut self, seed: u64) -> [u8; 16] {
        let mut nonce = [0u8; 16];
        nonce[..8].copy_from_slice(&seed.to_le_bytes());
        nonce[8..].copy_from_slice(&(self.used_nonces.len() as u64).to_le_bytes());
        nonce
    }

    /// Verifies a report against a previously issued nonce.
    ///
    /// Rejects (constant-time MAC comparison) when the MAC is wrong —
    /// i.e. the module was tampered with, or runs on another platform —
    /// and when the nonce was already consumed (replay).
    pub fn verify(&mut self, nonce: [u8; 16], report: &AttestationReport) -> bool {
        if report.nonce != nonce {
            return false;
        }
        if self.used_nonces.contains(&nonce) {
            return false; // replayed
        }
        let mut input = Vec::with_capacity(16 + report.data.len());
        input.extend_from_slice(&nonce);
        input.extend_from_slice(&report.data);
        let expected = hmac_sha256(&self.expected_key.0, &input);
        let ok = ct_eq(&expected, &report.mac);
        if ok {
            self.used_nonces.push(nonce);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleImage;
    use crate::platform::Platform;

    fn setup() -> (Platform, ModuleImage) {
        let platform = Platform::new([9u8; 32]);
        let image = ModuleImage::from_raw(
            vec![0x22; 32],
            vec![0; 4],
            0x0a00_0000,
            0x0a10_0000,
            vec![0],
        );
        (platform, image)
    }

    #[test]
    fn honest_module_attests() {
        let (platform, image) = setup();
        let measurement = Measurement::of(&image);
        let key = platform.derive_key(measurement);
        let mut verifier = Verifier::new(measurement, key);
        let nonce = verifier.challenge(42);
        let report = attest(&key, nonce, b"hello");
        assert!(verifier.verify(nonce, &report));
    }

    #[test]
    fn tampered_module_fails_attestation() {
        let (platform, image) = setup();
        let expected_measurement = Measurement::of(&image);
        let expected_key = platform.derive_key(expected_measurement);
        // The OS modifies the module before loading: the platform then
        // derives a key for the *tampered* measurement.
        let mut tampered = image.clone();
        tampered.tamper_code_bit(5, 2);
        let actual_key = platform.derive_key(Measurement::of(&tampered));
        let mut verifier = Verifier::new(expected_measurement, expected_key);
        let nonce = verifier.challenge(42);
        let report = attest(&actual_key, nonce, b"");
        assert!(!verifier.verify(nonce, &report));
    }

    #[test]
    fn wrong_platform_fails_attestation() {
        let (_, image) = setup();
        let other_platform = Platform::new([1u8; 32]);
        let measurement = Measurement::of(&image);
        let good_key = Platform::new([9u8; 32]).derive_key(measurement);
        let bad_key = other_platform.derive_key(measurement);
        let mut verifier = Verifier::new(measurement, good_key);
        let nonce = verifier.challenge(1);
        assert!(!verifier.verify(nonce, &attest(&bad_key, nonce, b"")));
    }

    #[test]
    fn replayed_report_rejected() {
        let (platform, image) = setup();
        let measurement = Measurement::of(&image);
        let key = platform.derive_key(measurement);
        let mut verifier = Verifier::new(measurement, key);
        let nonce = verifier.challenge(7);
        let report = attest(&key, nonce, b"");
        assert!(verifier.verify(nonce, &report));
        assert!(!verifier.verify(nonce, &report), "replay must fail");
    }

    #[test]
    fn report_binds_data() {
        let (platform, image) = setup();
        let measurement = Measurement::of(&image);
        let key = platform.derive_key(measurement);
        let mut verifier = Verifier::new(measurement, key);
        let nonce = verifier.challenge(7);
        let mut report = attest(&key, nonce, b"commit-to-A");
        report.data = b"commit-to-B".to_vec();
        assert!(!verifier.verify(nonce, &report));
    }

    #[test]
    fn report_for_wrong_nonce_rejected() {
        let (platform, image) = setup();
        let measurement = Measurement::of(&image);
        let key = platform.derive_key(measurement);
        let mut verifier = Verifier::new(measurement, key);
        let n1 = verifier.challenge(1);
        let n2 = verifier.challenge(2);
        let report = attest(&key, n1, b"");
        assert!(!verifier.verify(n2, &report));
    }
}
