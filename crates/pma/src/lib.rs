//! # swsec-pma — Protected Module Architectures
//!
//! The §IV platform of Piessens & Verbauwhede (DATE 2016): isolate a
//! security-critical module inside an untrusted process — and an
//! untrusted OS — using a simple memory access-control model, then
//! layer cryptographic identity on top:
//!
//! * [`module`] — module images and their protected regions (the
//!   access-control *rules* live in `swsec_vm::policy`, enforced by the
//!   CPU on every access);
//! * [`platform`] — the trusted hardware: master key, code
//!   measurement, module-key derivation, module loading, monotonic
//!   counters;
//! * [`attest`](mod@crate::attest) — remote attestation: a tampered-before-load module
//!   derives the wrong key and cannot answer the verifier's challenge;
//! * [`continuity`] — sealed storage with freshness: the rollback
//!   attack against naive sealing, a monotonic-counter fix that loses
//!   liveness under crashes, and a two-slot write-ahead scheme that is
//!   both rollback- and crash-safe.
//!
//! ## Example: loading the paper's secret module under protection
//!
//! ```
//! use swsec_minc::{compile, parse, CompileOptions};
//! use swsec_pma::module::ModuleImage;
//! use swsec_pma::platform::Platform;
//! use swsec_vm::policy::ReentryPolicy;
//! use swsec_vm::prelude::*;
//!
//! let unit = parse(
//!     "static int secret = 666;\n\
//!      int get_secret(int pin) { if (pin == 1234) return secret; return 0; }",
//! )?;
//! let mut opts = CompileOptions::default();
//! opts.no_start = true;
//! let image = ModuleImage::from_compiled(&compile(&unit, &opts)?);
//!
//! let mut platform = Platform::new([7u8; 32]);
//! let mut machine = Machine::new();
//! let loaded = platform.load_module(&mut machine, &image, ReentryPolicy::AllowReturns)?;
//! assert!(loaded.export("get_secret").is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod attest;
pub mod continuity;
pub mod module;
pub mod platform;

pub use attest::{attest, AttestationReport, Verifier};
pub use continuity::{
    ContinuityError, CounterContinuity, CrashPoint, NaiveContinuity, TwoPhaseContinuity,
    UntrustedStore,
};
pub use module::ModuleImage;
pub use platform::{LoadedModule, Measurement, ModuleKey, Platform, PlatformError};
