//! State continuity: secure storage and recovery of protected-module
//! state across restarts (§IV-C).
//!
//! The module's persistent state lives on storage **controlled by the
//! attacker** (the OS owns the disk). Sealing gives confidentiality and
//! integrity, but not *freshness*: the attacker can keep every blob the
//! module ever sealed and feed back an old one — the paper's rollback
//! attack that resets `tries_left` and enables PIN brute force.
//!
//! Three schemes, in increasing order of strength:
//!
//! * [`NaiveContinuity`] — sealing only. Rollback succeeds.
//! * [`CounterContinuity`] — a platform monotonic counter is bumped
//!   *before* the blob is written; recovery accepts only the blob whose
//!   sequence number equals the counter. Rollback fails, but a crash in
//!   the window between the bump and the write leaves **no** acceptable
//!   blob: the module is bricked. This is the liveness problem the
//!   paper points at ("random crashes … should not leave it in a state
//!   where it can no longer make progress").
//! * [`TwoPhaseContinuity`] — a Memoir/ICE-style write-ahead scheme:
//!   seal with sequence `counter + 1`, write to the *other* of two
//!   slots (keeping the previous blob), and only then bump the counter;
//!   recovery accepts sequence `counter` or `counter + 1` (catching the
//!   counter up in the latter case). Rollback still fails, and every
//!   crash point recovers to either the old or the new state.

use std::collections::HashMap;
use std::fmt;

use swsec_crypto::seal::{open, seal, SealError};

use crate::platform::{CounterId, ModuleKey, Platform};

/// Attacker-controlled persistent storage (the OS's disk).
///
/// The attacker may snapshot it at any time and later restore the
/// snapshot — that is the rollback attack.
#[derive(Debug, Clone, Default)]
pub struct UntrustedStore {
    slots: HashMap<u32, Vec<u8>>,
}

impl UntrustedStore {
    /// Creates empty storage.
    pub fn new() -> UntrustedStore {
        UntrustedStore::default()
    }

    /// Reads a slot.
    pub fn read(&self, slot: u32) -> Option<&[u8]> {
        self.slots.get(&slot).map(|v| v.as_slice())
    }

    /// Writes a slot.
    pub fn write(&mut self, slot: u32, bytes: &[u8]) {
        self.slots.insert(slot, bytes.to_vec());
    }

    /// Attacker action: copy the entire storage.
    pub fn snapshot(&self) -> UntrustedStore {
        self.clone()
    }

    /// Attacker action: replace the storage with an earlier snapshot.
    pub fn restore(&mut self, snapshot: UntrustedStore) {
        *self = snapshot;
    }
}

/// Why stored state could not be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContinuityError {
    /// No blob is present.
    NoState,
    /// A blob failed to unseal (tampered or wrong key).
    Corrupt,
    /// A blob unsealed but its sequence number is not acceptable —
    /// stale (rollback) or, for the counter scheme after an unlucky
    /// crash, *nothing* acceptable exists (liveness loss).
    Stale {
        /// The best sequence found in storage.
        found: u64,
        /// The sequence the platform counter requires.
        expected: u64,
    },
}

impl fmt::Display for ContinuityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContinuityError::NoState => write!(f, "no stored state"),
            ContinuityError::Corrupt => write!(f, "stored state failed authentication"),
            ContinuityError::Stale { found, expected } => {
                write!(f, "stored state is stale (found seq {found}, expected {expected})")
            }
        }
    }
}

impl std::error::Error for ContinuityError {}

/// Where to inject a crash during a save, for liveness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// No crash: the save completes.
    None,
    /// Crash before anything is written.
    BeforeStore,
    /// Crash after the blob is written but before the counter moves
    /// (only meaningful for [`TwoPhaseContinuity`], which writes first).
    AfterStore,
    /// Crash after the counter moved but before the blob is written
    /// (only meaningful for [`CounterContinuity`], which bumps first).
    AfterBump,
}

fn encode(seq: u64, state: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + state.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(state);
    out
}

fn decode(blob: Vec<u8>) -> Result<(u64, Vec<u8>), ContinuityError> {
    if blob.len() < 8 {
        return Err(ContinuityError::Corrupt);
    }
    let seq = u64::from_le_bytes(blob[..8].try_into().expect("length checked"));
    Ok((seq, blob[8..].to_vec()))
}

fn nonce_for(seq: u64, salt: u32) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&seq.to_le_bytes());
    n[8..].copy_from_slice(&salt.to_le_bytes());
    n
}

/// Sealing without freshness: confidentiality and integrity only.
#[derive(Debug)]
pub struct NaiveContinuity {
    key: ModuleKey,
    slot: u32,
    local_seq: u64,
}

impl NaiveContinuity {
    /// Creates the scheme for a module key, storing into `slot`.
    pub fn new(key: ModuleKey, slot: u32) -> NaiveContinuity {
        NaiveContinuity {
            key,
            slot,
            local_seq: 0,
        }
    }

    /// Seals and stores `state`.
    pub fn save(&mut self, store: &mut UntrustedStore, state: &[u8]) {
        self.local_seq += 1;
        let blob = seal(
            &self.key.0,
            &nonce_for(self.local_seq, self.slot),
            b"naive-continuity",
            &encode(self.local_seq, state),
        );
        store.write(self.slot, &blob);
    }

    /// Recovers whatever validly-sealed blob is in storage — including a
    /// replayed old one.
    ///
    /// # Errors
    ///
    /// [`ContinuityError::NoState`] on empty storage and
    /// [`ContinuityError::Corrupt`] on tampered blobs.
    pub fn load(&self, store: &UntrustedStore) -> Result<Vec<u8>, ContinuityError> {
        let blob = store.read(self.slot).ok_or(ContinuityError::NoState)?;
        let plain = open(&self.key.0, b"naive-continuity", blob).map_err(|e| match e {
            SealError::TooShort | SealError::BadTag => ContinuityError::Corrupt,
        })?;
        decode(plain).map(|(_, state)| state)
    }
}

/// Monotonic-counter freshness: bump-then-write.
///
/// Rollback-safe but not crash-safe — see the module docs.
#[derive(Debug)]
pub struct CounterContinuity {
    key: ModuleKey,
    counter: CounterId,
    slot: u32,
}

impl CounterContinuity {
    /// Creates the scheme over a platform counter, storing into `slot`.
    pub fn new(key: ModuleKey, counter: CounterId, slot: u32) -> CounterContinuity {
        CounterContinuity { key, counter, slot }
    }

    /// Saves `state`, optionally crashing at the injected point.
    /// Returns `true` if the save completed.
    pub fn save(
        &mut self,
        platform: &mut Platform,
        store: &mut UntrustedStore,
        state: &[u8],
        crash: CrashPoint,
    ) -> bool {
        if crash == CrashPoint::BeforeStore {
            return false;
        }
        // Bump first: from this instant the counter demands a blob that
        // does not exist yet.
        let seq = platform.bump_counter(self.counter);
        if crash == CrashPoint::AfterBump {
            return false;
        }
        let blob = seal(
            &self.key.0,
            &nonce_for(seq, self.slot),
            b"counter-continuity",
            &encode(seq, state),
        );
        store.write(self.slot, &blob);
        true
    }

    /// Recovers the state whose sequence matches the platform counter.
    ///
    /// # Errors
    ///
    /// [`ContinuityError::Stale`] when the stored sequence does not
    /// match the counter — after a rollback **or** after an unlucky
    /// crash (liveness loss); [`ContinuityError::NoState`] /
    /// [`ContinuityError::Corrupt`] as usual.
    pub fn load(
        &self,
        platform: &Platform,
        store: &UntrustedStore,
    ) -> Result<Vec<u8>, ContinuityError> {
        let expected = platform.counter(self.counter);
        let blob = store.read(self.slot).ok_or(ContinuityError::NoState)?;
        let plain = open(&self.key.0, b"counter-continuity", blob)
            .map_err(|_| ContinuityError::Corrupt)?;
        let (seq, state) = decode(plain)?;
        if seq != expected {
            return Err(ContinuityError::Stale {
                found: seq,
                expected,
            });
        }
        Ok(state)
    }
}

/// Write-ahead two-slot freshness: write-then-bump with recovery
/// catch-up. Rollback-safe *and* crash-safe.
#[derive(Debug)]
pub struct TwoPhaseContinuity {
    key: ModuleKey,
    counter: CounterId,
    slot_a: u32,
    slot_b: u32,
}

impl TwoPhaseContinuity {
    /// Creates the scheme over a platform counter and two storage slots.
    pub fn new(key: ModuleKey, counter: CounterId, slot_a: u32, slot_b: u32) -> TwoPhaseContinuity {
        TwoPhaseContinuity {
            key,
            counter,
            slot_a,
            slot_b,
        }
    }

    fn slot_for(&self, seq: u64) -> u32 {
        if seq.is_multiple_of(2) {
            self.slot_a
        } else {
            self.slot_b
        }
    }

    /// Saves `state`, optionally crashing at the injected point.
    /// Returns `true` if the save completed.
    pub fn save(
        &mut self,
        platform: &mut Platform,
        store: &mut UntrustedStore,
        state: &[u8],
        crash: CrashPoint,
    ) -> bool {
        if crash == CrashPoint::BeforeStore {
            return false;
        }
        // Write ahead: the new blob (sequence counter+1) goes to the
        // *other* slot, leaving the current blob intact.
        let next = platform.counter(self.counter) + 1;
        let blob = seal(
            &self.key.0,
            &nonce_for(next, self.slot_for(next)),
            b"two-phase-continuity",
            &encode(next, state),
        );
        store.write(self.slot_for(next), &blob);
        if crash == CrashPoint::AfterStore {
            return false;
        }
        platform.bump_counter(self.counter);
        true
    }

    fn try_slot(
        &self,
        store: &UntrustedStore,
        slot: u32,
    ) -> Option<(u64, Vec<u8>)> {
        let blob = store.read(slot)?;
        let plain = open(&self.key.0, b"two-phase-continuity", blob).ok()?;
        decode(plain).ok()
    }

    /// Recovers the freshest acceptable state: sequence `counter` or
    /// `counter + 1` (write-ahead from an interrupted save, in which
    /// case the counter is caught up so the superseded blob dies).
    ///
    /// # Errors
    ///
    /// [`ContinuityError::Stale`] only for genuinely rolled-back
    /// storage; [`ContinuityError::NoState`] before the first save.
    pub fn load(
        &self,
        platform: &mut Platform,
        store: &UntrustedStore,
    ) -> Result<Vec<u8>, ContinuityError> {
        let expected = platform.counter(self.counter);
        let candidates = [
            self.try_slot(store, self.slot_a),
            self.try_slot(store, self.slot_b),
        ];
        let mut best: Option<(u64, Vec<u8>)> = None;
        let mut best_any = 0u64;
        let mut saw_any = false;
        for c in candidates.into_iter().flatten() {
            saw_any = true;
            best_any = best_any.max(c.0);
            if c.0 == expected || c.0 == expected + 1 {
                match &best {
                    Some((seq, _)) if *seq >= c.0 => {}
                    _ => best = Some(c),
                }
            }
        }
        match best {
            Some((seq, state)) => {
                if seq == expected + 1 {
                    // The save was interrupted after the write: commit it
                    // now so the older blob can never be replayed.
                    platform.bump_counter(self.counter);
                }
                Ok(state)
            }
            None if saw_any => Err(ContinuityError::Stale {
                found: best_any,
                expected,
            }),
            None if expected == 0 => Err(ContinuityError::NoState),
            None => Err(ContinuityError::Stale {
                found: 0,
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Platform, ModuleKey, UntrustedStore) {
        let platform = Platform::new([5u8; 32]);
        let key = ModuleKey([0xAB; 32]);
        (platform, key, UntrustedStore::new())
    }

    #[test]
    fn naive_roundtrip() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"tries=3");
        assert_eq!(scheme.load(&store).unwrap(), b"tries=3");
    }

    #[test]
    fn naive_is_rollback_vulnerable() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"tries=3");
        let old = store.snapshot(); // attacker keeps the fresh state
        scheme.save(&mut store, b"tries=1");
        store.restore(old); // attacker rolls back
        // The stale state is accepted: the attack works.
        assert_eq!(scheme.load(&store).unwrap(), b"tries=3");
    }

    #[test]
    fn naive_detects_tampering() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"state");
        let mut blob = store.read(0).unwrap().to_vec();
        blob[15] ^= 1;
        store.write(0, &blob);
        assert_eq!(scheme.load(&store), Err(ContinuityError::Corrupt));
    }

    #[test]
    fn counter_scheme_blocks_rollback() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = CounterContinuity::new(key, c, 0);
        assert!(scheme.save(&mut platform, &mut store, b"tries=3", CrashPoint::None));
        let old = store.snapshot();
        assert!(scheme.save(&mut platform, &mut store, b"tries=1", CrashPoint::None));
        store.restore(old);
        assert!(matches!(
            scheme.load(&platform, &store),
            Err(ContinuityError::Stale { found: 1, expected: 2 })
        ));
    }

    #[test]
    fn counter_scheme_loses_liveness_on_crash() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = CounterContinuity::new(key, c, 0);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        // Crash after the counter bump, before the new blob is written:
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::AfterBump));
        // Now NO blob matches the counter — the module is bricked.
        assert!(matches!(
            scheme.load(&platform, &store),
            Err(ContinuityError::Stale { .. })
        ));
    }

    #[test]
    fn two_phase_roundtrip_and_rollback_protection() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"tries=3", CrashPoint::None));
        let old = store.snapshot();
        assert!(scheme.save(&mut platform, &mut store, b"tries=1", CrashPoint::None));
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"tries=1");
        store.restore(old);
        assert!(matches!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::Stale { .. })
        ));
    }

    #[test]
    fn two_phase_survives_crash_after_store() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        // Crash after writing v2 but before the counter bump.
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::AfterStore));
        // Recovery accepts the write-ahead blob and catches the counter up.
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"v2");
        // The catch-up makes the old blob permanently unacceptable.
        let stale_only = {
            let mut s = UntrustedStore::new();
            if let Some(b) = store.read(0) {
                s.write(0, b);
            }
            s
        };
        let _ = stale_only;
    }

    #[test]
    fn two_phase_survives_crash_before_store() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::BeforeStore));
        // The old state remains recoverable: no liveness loss.
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"v1");
    }

    #[test]
    fn two_phase_catch_up_invalidates_superseded_blob() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        let with_v1 = store.snapshot();
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::AfterStore));
        // Recovery commits v2.
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"v2");
        // Replaying the v1-only snapshot must now fail.
        store.restore(with_v1);
        assert!(matches!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::Stale { .. })
        ));
    }

    #[test]
    fn two_phase_no_state_initially() {
        let (mut platform, key, store) = setup();
        let c = platform.alloc_counter();
        let scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert_eq!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::NoState)
        );
    }

    #[test]
    fn blobs_are_confidential() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"PIN=1234");
        let blob = store.read(0).unwrap();
        assert!(!blob
            .windows(8)
            .any(|w| w == b"PIN=1234"));
    }

    #[test]
    fn wrong_key_cannot_open_blobs() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"secret");
        let other = NaiveContinuity::new(ModuleKey([0xCD; 32]), 0);
        assert_eq!(other.load(&store), Err(ContinuityError::Corrupt));
    }
}
