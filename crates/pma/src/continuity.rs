//! State continuity: secure storage and recovery of protected-module
//! state across restarts (§IV-C).
//!
//! The module's persistent state lives on storage **controlled by the
//! attacker** (the OS owns the disk). Sealing gives confidentiality and
//! integrity, but not *freshness*: the attacker can keep every blob the
//! module ever sealed and feed back an old one — the paper's rollback
//! attack that resets `tries_left` and enables PIN brute force.
//!
//! Three schemes, in increasing order of strength:
//!
//! * [`NaiveContinuity`] — sealing only. Rollback succeeds.
//! * [`CounterContinuity`] — a platform monotonic counter is bumped
//!   *before* the blob is written; recovery accepts only the blob whose
//!   sequence number equals the counter. Rollback fails, but a crash in
//!   the window between the bump and the write leaves **no** acceptable
//!   blob: the module is bricked. This is the liveness problem the
//!   paper points at ("random crashes … should not leave it in a state
//!   where it can no longer make progress").
//! * [`TwoPhaseContinuity`] — a Memoir/ICE-style write-ahead scheme:
//!   seal with sequence `counter + 1`, write to the *other* of two
//!   slots (keeping the previous blob), and only then bump the counter;
//!   recovery accepts sequence `counter` or `counter + 1` (catching the
//!   counter up in the latter case). Rollback still fails, and every
//!   crash point recovers to either the old or the new state.

use std::collections::HashMap;
use std::fmt;

use swsec_crypto::seal::{open, seal, SealError};

use crate::platform::{CounterId, ModuleKey, Platform};

/// Attacker-controlled persistent storage (the OS's disk).
///
/// The attacker may snapshot it at any time and later restore the
/// snapshot — that is the rollback attack.
#[derive(Debug, Clone, Default)]
pub struct UntrustedStore {
    slots: HashMap<u32, Vec<u8>>,
}

impl UntrustedStore {
    /// Creates empty storage.
    pub fn new() -> UntrustedStore {
        UntrustedStore::default()
    }

    /// Reads a slot.
    pub fn read(&self, slot: u32) -> Option<&[u8]> {
        self.slots.get(&slot).map(|v| v.as_slice())
    }

    /// Writes a slot.
    pub fn write(&mut self, slot: u32, bytes: &[u8]) {
        self.slots.insert(slot, bytes.to_vec());
    }

    /// Attacker action: copy the entire storage.
    pub fn snapshot(&self) -> UntrustedStore {
        self.clone()
    }

    /// Attacker action: replace the storage with an earlier snapshot.
    pub fn restore(&mut self, snapshot: UntrustedStore) {
        *self = snapshot;
    }

    /// Attacker (or cosmic-ray) action: flip one bit of a stored blob.
    /// `byte` is reduced modulo the blob length, so any value addresses
    /// *some* byte; returns the `(byte, bit)` actually flipped, or
    /// `None` if the slot is empty.
    pub fn flip_bit(&mut self, slot: u32, byte: usize, bit: u8) -> Option<(usize, u8)> {
        let blob = self.slots.get_mut(&slot)?;
        if blob.is_empty() {
            return None;
        }
        let byte = byte % blob.len();
        let bit = bit % 8;
        blob[byte] ^= 1 << bit;
        Some((byte, bit))
    }
}

/// What reading one slot of a two-slot scheme yielded.
enum SlotRead {
    /// Nothing stored there.
    Missing,
    /// A blob is present but fails authentication or decoding.
    Corrupt,
    /// A validly sealed `(sequence, state)` pair.
    Valid(u64, Vec<u8>),
}

/// Why stored state could not be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContinuityError {
    /// No blob is present.
    NoState,
    /// A blob failed to unseal (tampered or wrong key).
    Corrupt,
    /// A blob unsealed but its sequence number is not acceptable —
    /// stale (rollback) or, for the counter scheme after an unlucky
    /// crash, *nothing* acceptable exists (liveness loss).
    Stale {
        /// The best sequence found in storage.
        found: u64,
        /// The sequence the platform counter requires.
        expected: u64,
    },
}

impl fmt::Display for ContinuityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContinuityError::NoState => write!(f, "no stored state"),
            ContinuityError::Corrupt => write!(f, "stored state failed authentication"),
            ContinuityError::Stale { found, expected } => {
                write!(f, "stored state is stale (found seq {found}, expected {expected})")
            }
        }
    }
}

impl std::error::Error for ContinuityError {}

/// Where to inject a crash during a save, for liveness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// No crash: the save completes.
    None,
    /// Crash before anything is written.
    BeforeStore,
    /// Crash after the blob is written but before the counter moves
    /// (only meaningful for [`TwoPhaseContinuity`], which writes first).
    AfterStore,
    /// Crash after the counter moved but before the blob is written
    /// (only meaningful for [`CounterContinuity`], which bumps first).
    AfterBump,
}

fn encode(seq: u64, state: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + state.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(state);
    out
}

fn decode(blob: Vec<u8>) -> Result<(u64, Vec<u8>), ContinuityError> {
    if blob.len() < 8 {
        return Err(ContinuityError::Corrupt);
    }
    let seq = u64::from_le_bytes(blob[..8].try_into().expect("length checked"));
    Ok((seq, blob[8..].to_vec()))
}

fn nonce_for(seq: u64, salt: u32) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&seq.to_le_bytes());
    n[8..].copy_from_slice(&salt.to_le_bytes());
    n
}

/// Sealing without freshness: confidentiality and integrity only.
#[derive(Debug)]
pub struct NaiveContinuity {
    key: ModuleKey,
    slot: u32,
    local_seq: u64,
}

impl NaiveContinuity {
    /// Creates the scheme for a module key, storing into `slot`.
    pub fn new(key: ModuleKey, slot: u32) -> NaiveContinuity {
        NaiveContinuity {
            key,
            slot,
            local_seq: 0,
        }
    }

    /// Seals and stores `state`.
    pub fn save(&mut self, store: &mut UntrustedStore, state: &[u8]) {
        self.local_seq += 1;
        let blob = seal(
            &self.key.0,
            &nonce_for(self.local_seq, self.slot),
            b"naive-continuity",
            &encode(self.local_seq, state),
        );
        store.write(self.slot, &blob);
    }

    /// Recovers whatever validly-sealed blob is in storage — including a
    /// replayed old one.
    ///
    /// # Errors
    ///
    /// [`ContinuityError::NoState`] on empty storage and
    /// [`ContinuityError::Corrupt`] on tampered blobs.
    pub fn load(&self, store: &UntrustedStore) -> Result<Vec<u8>, ContinuityError> {
        let blob = store.read(self.slot).ok_or(ContinuityError::NoState)?;
        let plain = open(&self.key.0, b"naive-continuity", blob).map_err(|e| match e {
            SealError::TooShort | SealError::BadTag => ContinuityError::Corrupt,
        })?;
        decode(plain).map(|(_, state)| state)
    }
}

/// Monotonic-counter freshness: bump-then-write.
///
/// Rollback-safe but not crash-safe — see the module docs.
#[derive(Debug)]
pub struct CounterContinuity {
    key: ModuleKey,
    counter: CounterId,
    slot: u32,
}

impl CounterContinuity {
    /// Creates the scheme over a platform counter, storing into `slot`.
    pub fn new(key: ModuleKey, counter: CounterId, slot: u32) -> CounterContinuity {
        CounterContinuity { key, counter, slot }
    }

    /// Saves `state`, optionally crashing at the injected point.
    /// Returns `true` if the save completed.
    pub fn save(
        &mut self,
        platform: &mut Platform,
        store: &mut UntrustedStore,
        state: &[u8],
        crash: CrashPoint,
    ) -> bool {
        if crash == CrashPoint::BeforeStore {
            return false;
        }
        // Bump first: from this instant the counter demands a blob that
        // does not exist yet.
        let seq = platform.bump_counter(self.counter);
        if crash == CrashPoint::AfterBump {
            return false;
        }
        let blob = seal(
            &self.key.0,
            &nonce_for(seq, self.slot),
            b"counter-continuity",
            &encode(seq, state),
        );
        store.write(self.slot, &blob);
        true
    }

    /// Recovers the state whose sequence matches the platform counter.
    ///
    /// # Errors
    ///
    /// [`ContinuityError::Stale`] when the stored sequence does not
    /// match the counter — after a rollback **or** after an unlucky
    /// crash (liveness loss); [`ContinuityError::NoState`] /
    /// [`ContinuityError::Corrupt`] as usual.
    pub fn load(
        &self,
        platform: &Platform,
        store: &UntrustedStore,
    ) -> Result<Vec<u8>, ContinuityError> {
        let expected = platform.counter(self.counter);
        let blob = store.read(self.slot).ok_or(ContinuityError::NoState)?;
        let plain = open(&self.key.0, b"counter-continuity", blob)
            .map_err(|_| ContinuityError::Corrupt)?;
        let (seq, state) = decode(plain)?;
        if seq != expected {
            return Err(ContinuityError::Stale {
                found: seq,
                expected,
            });
        }
        Ok(state)
    }
}

/// Write-ahead two-slot freshness: write-then-bump with recovery
/// catch-up. Rollback-safe *and* crash-safe.
#[derive(Debug)]
pub struct TwoPhaseContinuity {
    key: ModuleKey,
    counter: CounterId,
    slot_a: u32,
    slot_b: u32,
}

impl TwoPhaseContinuity {
    /// Creates the scheme over a platform counter and two storage slots.
    pub fn new(key: ModuleKey, counter: CounterId, slot_a: u32, slot_b: u32) -> TwoPhaseContinuity {
        TwoPhaseContinuity {
            key,
            counter,
            slot_a,
            slot_b,
        }
    }

    fn slot_for(&self, seq: u64) -> u32 {
        if seq.is_multiple_of(2) {
            self.slot_a
        } else {
            self.slot_b
        }
    }

    /// Saves `state`, optionally crashing at the injected point.
    /// Returns `true` if the save completed.
    pub fn save(
        &mut self,
        platform: &mut Platform,
        store: &mut UntrustedStore,
        state: &[u8],
        crash: CrashPoint,
    ) -> bool {
        if crash == CrashPoint::BeforeStore {
            return false;
        }
        // Write ahead: the new blob (sequence counter+1) goes to the
        // *other* slot, leaving the current blob intact.
        let next = platform.counter(self.counter) + 1;
        let blob = seal(
            &self.key.0,
            &nonce_for(next, self.slot_for(next)),
            b"two-phase-continuity",
            &encode(next, state),
        );
        store.write(self.slot_for(next), &blob);
        if crash == CrashPoint::AfterStore {
            return false;
        }
        platform.bump_counter(self.counter);
        true
    }

    fn try_slot(&self, store: &UntrustedStore, slot: u32) -> SlotRead {
        let Some(blob) = store.read(slot) else {
            return SlotRead::Missing;
        };
        let Ok(plain) = open(&self.key.0, b"two-phase-continuity", blob) else {
            return SlotRead::Corrupt;
        };
        match decode(plain) {
            Ok((seq, state)) => SlotRead::Valid(seq, state),
            Err(_) => SlotRead::Corrupt,
        }
    }

    /// Recovers the freshest acceptable state: sequence `counter` or
    /// `counter + 1` (write-ahead from an interrupted save, in which
    /// case the counter is caught up so the superseded blob dies).
    ///
    /// # Errors
    ///
    /// [`ContinuityError::Stale`] only for genuinely rolled-back (or
    /// deleted) storage; [`ContinuityError::Corrupt`] when blobs are
    /// present but *none* passes authentication — tampering, which is a
    /// different attack than rollback and must be reported as such;
    /// [`ContinuityError::NoState`] before the first save.
    pub fn load(
        &self,
        platform: &mut Platform,
        store: &UntrustedStore,
    ) -> Result<Vec<u8>, ContinuityError> {
        let expected = platform.counter(self.counter);
        let candidates = [
            self.try_slot(store, self.slot_a),
            self.try_slot(store, self.slot_b),
        ];
        let mut best: Option<(u64, Vec<u8>)> = None;
        let mut best_any = 0u64;
        let mut saw_valid = false;
        let mut saw_corrupt = false;
        for c in candidates {
            let (seq, state) = match c {
                SlotRead::Missing => continue,
                SlotRead::Corrupt => {
                    saw_corrupt = true;
                    continue;
                }
                SlotRead::Valid(seq, state) => (seq, state),
            };
            saw_valid = true;
            best_any = best_any.max(seq);
            if seq == expected || seq == expected + 1 {
                match &best {
                    Some((s, _)) if *s >= seq => {}
                    _ => best = Some((seq, state)),
                }
            }
        }
        match best {
            Some((seq, state)) => {
                if seq == expected + 1 {
                    // The save was interrupted after the write: commit it
                    // now so the older blob can never be replayed.
                    platform.bump_counter(self.counter);
                }
                Ok(state)
            }
            // A validly sealed but unacceptable sequence: rollback.
            None if saw_valid => Err(ContinuityError::Stale {
                found: best_any,
                expected,
            }),
            // Blobs exist but none authenticates: tampering, not
            // rollback — report it as corruption so the operator knows
            // which attack (or disk fault) they are looking at.
            None if saw_corrupt => Err(ContinuityError::Corrupt),
            None if expected == 0 => Err(ContinuityError::NoState),
            // Storage emptied under a non-zero counter: the blobs were
            // deleted, which freshness-wise is a rollback to nothing.
            None => Err(ContinuityError::Stale {
                found: 0,
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Platform, ModuleKey, UntrustedStore) {
        let platform = Platform::new([5u8; 32]);
        let key = ModuleKey([0xAB; 32]);
        (platform, key, UntrustedStore::new())
    }

    #[test]
    fn naive_roundtrip() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"tries=3");
        assert_eq!(scheme.load(&store).unwrap(), b"tries=3");
    }

    #[test]
    fn naive_is_rollback_vulnerable() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"tries=3");
        let old = store.snapshot(); // attacker keeps the fresh state
        scheme.save(&mut store, b"tries=1");
        store.restore(old); // attacker rolls back
        // The stale state is accepted: the attack works.
        assert_eq!(scheme.load(&store).unwrap(), b"tries=3");
    }

    #[test]
    fn naive_detects_tampering() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"state");
        let mut blob = store.read(0).unwrap().to_vec();
        blob[15] ^= 1;
        store.write(0, &blob);
        assert_eq!(scheme.load(&store), Err(ContinuityError::Corrupt));
    }

    #[test]
    fn counter_scheme_blocks_rollback() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = CounterContinuity::new(key, c, 0);
        assert!(scheme.save(&mut platform, &mut store, b"tries=3", CrashPoint::None));
        let old = store.snapshot();
        assert!(scheme.save(&mut platform, &mut store, b"tries=1", CrashPoint::None));
        store.restore(old);
        assert!(matches!(
            scheme.load(&platform, &store),
            Err(ContinuityError::Stale { found: 1, expected: 2 })
        ));
    }

    #[test]
    fn counter_scheme_loses_liveness_on_crash() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = CounterContinuity::new(key, c, 0);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        // Crash after the counter bump, before the new blob is written:
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::AfterBump));
        // Now NO blob matches the counter — the module is bricked.
        assert!(matches!(
            scheme.load(&platform, &store),
            Err(ContinuityError::Stale { .. })
        ));
    }

    #[test]
    fn two_phase_roundtrip_and_rollback_protection() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"tries=3", CrashPoint::None));
        let old = store.snapshot();
        assert!(scheme.save(&mut platform, &mut store, b"tries=1", CrashPoint::None));
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"tries=1");
        store.restore(old);
        assert!(matches!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::Stale { .. })
        ));
    }

    #[test]
    fn two_phase_survives_crash_after_store() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        // Crash after writing v2 but before the counter bump.
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::AfterStore));
        // Recovery accepts the write-ahead blob and catches the counter up.
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"v2");
        // The catch-up makes the old blob permanently unacceptable.
        let stale_only = {
            let mut s = UntrustedStore::new();
            if let Some(b) = store.read(0) {
                s.write(0, b);
            }
            s
        };
        let _ = stale_only;
    }

    #[test]
    fn two_phase_survives_crash_before_store() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::BeforeStore));
        // The old state remains recoverable: no liveness loss.
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"v1");
    }

    #[test]
    fn two_phase_catch_up_invalidates_superseded_blob() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        let with_v1 = store.snapshot();
        assert!(!scheme.save(&mut platform, &mut store, b"v2", CrashPoint::AfterStore));
        // Recovery commits v2.
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"v2");
        // Replaying the v1-only snapshot must now fail.
        store.restore(with_v1);
        assert!(matches!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::Stale { .. })
        ));
    }

    #[test]
    fn two_phase_no_state_initially() {
        let (mut platform, key, store) = setup();
        let c = platform.alloc_counter();
        let scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert_eq!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::NoState)
        );
    }

    #[test]
    fn two_phase_reports_corruption_not_rollback() {
        // Regression: with both slots tampered, load used to answer
        // `Stale { found: 0 }` — indistinguishable from a rollback to
        // deleted storage. Tampering must surface as `Corrupt`.
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        assert!(scheme.save(&mut platform, &mut store, b"v2", CrashPoint::None));
        assert!(store.flip_bit(0, 20, 3).is_some());
        assert!(store.flip_bit(1, 20, 3).is_some());
        assert_eq!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::Corrupt)
        );
    }

    #[test]
    fn two_phase_survives_single_slot_corruption_of_stale_blob() {
        // Corrupting only the *stale* slot must not cost liveness: the
        // current blob still authenticates and loads.
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None)); // seq 1 -> slot 1
        assert!(scheme.save(&mut platform, &mut store, b"v2", CrashPoint::None)); // seq 2 -> slot 0
        assert!(store.flip_bit(1, 9, 0).is_some()); // stale slot
        assert_eq!(scheme.load(&mut platform, &store).unwrap(), b"v2");
    }

    #[test]
    fn two_phase_current_slot_corrupted_is_stale_not_corrupt() {
        // Only the current blob is destroyed; the surviving valid blob
        // is genuinely stale, so `Stale` (with its sequence) is the
        // right answer — the operator sees what is still recoverable.
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        assert!(scheme.save(&mut platform, &mut store, b"v2", CrashPoint::None));
        assert!(store.flip_bit(0, 33, 5).is_some()); // current slot (seq 2)
        assert_eq!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::Stale {
                found: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn deleted_storage_is_still_reported_stale() {
        let (mut platform, key, mut store) = setup();
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        store.restore(UntrustedStore::new());
        assert_eq!(
            scheme.load(&mut platform, &store),
            Err(ContinuityError::Stale {
                found: 0,
                expected: 1
            })
        );
    }

    #[test]
    fn flip_bit_wraps_and_reports() {
        let mut store = UntrustedStore::new();
        assert_eq!(store.flip_bit(0, 0, 0), None);
        store.write(3, &[0u8; 4]);
        assert_eq!(store.flip_bit(3, 6, 9), Some((2, 1)));
        assert_eq!(store.read(3).unwrap(), &[0, 0, 2, 0]);
    }

    #[test]
    fn blobs_are_confidential() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"PIN=1234");
        let blob = store.read(0).unwrap();
        assert!(!blob
            .windows(8)
            .any(|w| w == b"PIN=1234"));
    }

    #[test]
    fn wrong_key_cannot_open_blobs() {
        let (_, key, mut store) = setup();
        let mut scheme = NaiveContinuity::new(key, 0);
        scheme.save(&mut store, b"secret");
        let other = NaiveContinuity::new(ModuleKey([0xCD; 32]), 0);
        assert_eq!(other.load(&store), Err(ContinuityError::Corrupt));
    }
}
