//! Protected module images and their placement in memory.
//!
//! A [`ModuleImage`] is the loadable form of a module: code bytes, data
//! bytes, entry-point offsets and export names. Images are usually
//! produced from a `swsec-minc` [`CompiledProgram`] compiled with
//! `no_start`, but can also be hand-built from raw bytes (the
//! machine-code attacker does exactly that).

use swsec_minc::CompiledProgram;
use swsec_vm::policy::ProtectedRegion;

/// A loadable protected-module image.
#[derive(Debug, Clone)]
pub struct ModuleImage {
    code: Vec<u8>,
    data: Vec<u8>,
    /// Offsets into `code` of the designated entry points.
    entry_offsets: Vec<u32>,
    /// Exported function names, parallel to `entry_offsets`.
    exports: Vec<String>,
    /// The base the code was compiled for (images are not relocatable;
    /// the module must be loaded at this address).
    code_base: u32,
    /// The base the data was compiled for.
    data_base: u32,
}

impl ModuleImage {
    /// Builds an image from a compiled MinC module (one compiled with
    /// `CompileOptions::no_start`). Every exported function becomes an
    /// entry point.
    pub fn from_compiled(program: &CompiledProgram) -> ModuleImage {
        let mut entry_offsets = Vec::new();
        let mut exports = Vec::new();
        for name in &program.exports {
            let addr = program.functions[name];
            entry_offsets.push(addr - program.text_base);
            exports.push(name.clone());
        }
        if let Some(reentry) = program.reentry_addr {
            entry_offsets.push(reentry - program.text_base);
            exports.push("__reentry".to_string());
        }
        ModuleImage {
            code: program.text.clone(),
            data: program.data.clone(),
            entry_offsets,
            exports,
            code_base: program.text_base,
            data_base: program.data_base,
        }
    }

    /// Builds an image from raw segments (used by hand-written modules
    /// and by attacker tooling).
    pub fn from_raw(
        code: Vec<u8>,
        data: Vec<u8>,
        code_base: u32,
        data_base: u32,
        entry_offsets: Vec<u32>,
    ) -> ModuleImage {
        let exports = entry_offsets
            .iter()
            .enumerate()
            .map(|(i, _)| format!("entry{i}"))
            .collect();
        ModuleImage {
            code,
            data,
            entry_offsets,
            exports,
            code_base,
            data_base,
        }
    }

    /// The module's code bytes — the input to measurement.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// The module's initial data bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The code base address the image was compiled for.
    pub fn code_base(&self) -> u32 {
        self.code_base
    }

    /// The data base address the image was compiled for.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// Entry-point offsets into the code segment.
    pub fn entry_offsets(&self) -> &[u32] {
        &self.entry_offsets
    }

    /// Exported names, parallel to [`ModuleImage::entry_offsets`].
    pub fn exports(&self) -> &[String] {
        &self.exports
    }

    /// Absolute address of the export named `name`.
    pub fn export_addr(&self, name: &str) -> Option<u32> {
        self.exports
            .iter()
            .position(|e| e == name)
            .map(|i| self.code_base + self.entry_offsets[i])
    }

    /// Flips one bit of the code image — the OS-level attacker tampering
    /// with a module before loading it (§IV-C). Attestation must detect
    /// this.
    pub fn tamper_code_bit(&mut self, byte: usize, bit: u8) {
        let len = self.code.len().max(1);
        self.code[byte % len] ^= 1 << (bit % 8);
    }

    /// The protected region this image occupies once loaded: code range,
    /// data range and absolute entry points.
    pub fn region(&self) -> ProtectedRegion {
        ProtectedRegion::new(
            self.code_base..self.code_base + self.code.len().max(1) as u32,
            self.data_base..self.data_base + self.data.len().max(1) as u32,
            self.entry_offsets
                .iter()
                .map(|&o| self.code_base + o)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_minc::{compile, parse, CompileOptions};

    fn secret_module_image() -> ModuleImage {
        let unit = parse(
            "static int tries_left = 3;\n\
             static int PIN = 1234;\n\
             static int secret = 666;\n\
             int get_secret(int provided_pin) {\n\
                 if (tries_left > 0) {\n\
                     if (PIN == provided_pin) { tries_left = 3; return secret; }\n\
                     else { tries_left--; return 0; }\n\
                 } else return 0;\n\
             }",
        )
        .unwrap();
        let mut opts = CompileOptions {
            no_start: true,
            ..CompileOptions::default()
        };
        opts.layout.0.text_base = 0x0a00_0000;
        opts.layout.0.data_base = 0x0a10_0000;
        ModuleImage::from_compiled(&compile(&unit, &opts).unwrap())
    }

    #[test]
    fn image_from_compiled_module() {
        let image = secret_module_image();
        assert_eq!(image.exports(), &["get_secret".to_string()]);
        assert_eq!(image.entry_offsets().len(), 1);
        assert!(image.export_addr("get_secret").is_some());
        assert!(image.export_addr("nope").is_none());
        assert!(!image.code().is_empty());
        assert!(!image.data().is_empty());
    }

    #[test]
    fn region_covers_code_and_data() {
        let image = secret_module_image();
        let region = image.region();
        assert!(region.code().contains(&image.export_addr("get_secret").unwrap()));
        assert!(region.data().contains(&image.data_base()));
        assert!(region.is_entry(image.export_addr("get_secret").unwrap()));
    }

    #[test]
    fn tampering_changes_code() {
        let mut image = secret_module_image();
        let before = image.code().to_vec();
        image.tamper_code_bit(10, 0);
        assert_ne!(image.code(), &before[..]);
    }
}
