//! The fuzzing corpus: coverage-deduplicated inputs with energy
//! scheduling.
//!
//! An input earns a corpus slot only when its coverage map showed
//! *novel* behaviour ([`CoverageGain::novel`]) and its bucketized
//! fingerprint is unseen. Each entry carries an **energy** score —
//! higher for inputs that opened new rare-event slots — and parent
//! selection is energy-weighted, so inputs that found faults, canary
//! trips or PMA violations get mutated more often. Selection draws
//! from the caller's seeded RNG; the corpus itself holds no
//! randomness, keeping campaign cells pure functions of their seed.

use swsec_obs::CoverageGain;
use swsec_rng::Rng;

use std::collections::BTreeSet;

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The input bytes.
    pub input: Vec<u8>,
    /// Scheduling weight (≥ 1).
    pub energy: u64,
    /// Bucketized coverage fingerprint at admission time.
    pub fingerprint: u64,
}

/// The corpus. Insertion order is deterministic (driven by the
/// engine's sequential loop), so weighted selection under a seeded RNG
/// is too.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    fingerprints: BTreeSet<u64>,
    total_energy: u64,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Admits `input` if its gain is novel and its fingerprint unseen.
    /// Returns whether it was admitted.
    pub fn add(&mut self, input: Vec<u8>, fingerprint: u64, gain: &CoverageGain) -> bool {
        if !gain.novel() || !self.fingerprints.insert(fingerprint) {
            return false;
        }
        self.push(input, fingerprint, energy_of(gain));
        true
    }

    /// Admits `input` unconditionally with minimum energy — used for
    /// the first seed so the corpus is never empty even for a target
    /// that emits no events at all.
    pub fn add_forced(&mut self, input: Vec<u8>, fingerprint: u64) {
        self.fingerprints.insert(fingerprint);
        self.push(input, fingerprint, 1);
    }

    fn push(&mut self, input: Vec<u8>, fingerprint: u64, energy: u64) {
        self.total_energy += energy;
        self.entries.push(CorpusEntry {
            input,
            energy,
            fingerprint,
        });
    }

    /// Energy-weighted parent selection.
    ///
    /// # Panics
    ///
    /// Panics on an empty corpus; the engine seeds at least one entry
    /// before the mutation loop.
    pub fn select<R: Rng>(&self, rng: &mut R) -> &CorpusEntry {
        assert!(!self.entries.is_empty(), "corpus is empty");
        let mut pick = rng.gen_range(self.total_energy);
        for entry in &self.entries {
            if pick < entry.energy {
                return entry;
            }
            pick -= entry.energy;
        }
        self.entries.last().expect("non-empty")
    }
}

/// Energy from a coverage gain: every novelty dimension contributes,
/// rare security events dominate.
fn energy_of(gain: &CoverageGain) -> u64 {
    1 + 4 * gain.new_slots as u64 + gain.new_buckets as u64 + 16 * gain.new_rare as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_rng::Xoshiro256pp;

    fn gain(slots: usize, rare: usize) -> CoverageGain {
        CoverageGain {
            new_slots: slots,
            new_buckets: 0,
            new_rare: rare,
        }
    }

    #[test]
    fn duplicate_fingerprints_are_rejected() {
        let mut c = Corpus::new();
        assert!(c.add(vec![1], 99, &gain(3, 0)));
        assert!(!c.add(vec![2], 99, &gain(3, 0)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn non_novel_gains_are_rejected() {
        let mut c = Corpus::new();
        assert!(!c.add(vec![1], 5, &gain(0, 0)));
        assert!(c.is_empty());
    }

    #[test]
    fn rare_events_dominate_selection() {
        let mut c = Corpus::new();
        c.add(vec![0], 1, &gain(1, 0)); // energy 5
        c.add(vec![1], 2, &gain(1, 4)); // energy 69
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let picks = (0..1000)
            .filter(|_| c.select(&mut rng).input == vec![1])
            .count();
        assert!(picks > 800, "rare-event entry picked only {picks}/1000");
    }

    #[test]
    fn selection_is_deterministic_under_a_seeded_rng() {
        let mut c = Corpus::new();
        for i in 0..8u8 {
            c.add(vec![i], u64::from(i), &gain(1 + usize::from(i % 3), 0));
        }
        let run = |seed| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            (0..32).map(|_| c.select(&mut rng).input.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
