//! Byte-driven MinC program generation for the compiler target.
//!
//! [`program_from_bytes`] maps an arbitrary byte string onto a
//! *well-formed, safe* MinC program — the same bounded family
//! `tests/compiler_fuzz.rs` draws from proptest strategies (masked
//! array indices, literal loop bounds, no division) — so every fuzz
//! input decodes to a program the reference interpreter fully
//! specifies. The mapping is total and deterministic: fuzzing explores
//! program space by mutating the byte string, and any compiler crash
//! or observational divergence it provokes is replayable from the
//! input alone.

/// Number of scalar variables in the generated skeleton.
const NUM_VARS: u8 = 4;
/// Maximum nesting depth for compound statements/expressions.
const MAX_DEPTH: u8 = 2;

/// A cursor over the shape bytes. Wraps around so short inputs still
/// decode (a wrapped read re-reads earlier bytes; generation is
/// bounded by statement counts, not by input length).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn next(&mut self) -> u8 {
        if self.bytes.is_empty() {
            return 0;
        }
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos += 1;
        b
    }

    fn next_i16(&mut self) -> i16 {
        i16::from_le_bytes([self.next(), self.next()])
    }
}

/// Decodes `bytes` into a complete MinC program.
pub fn program_from_bytes(bytes: &[u8]) -> String {
    let mut cur = Cursor { bytes, pos: 0 };
    let mut body = String::new();
    let stmts = 1 + cur.next() % 8;
    for _ in 0..stmts {
        stmt(&mut cur, &mut body, 1, MAX_DEPTH);
    }
    format!(
        "int twist(int v) {{ return (v * 31) ^ (v >> 3); }}\n\
         int main() {{\n\
             int a[8];\n\
             for (int i = 0; i < 8; i++) a[i] = i * 3;\n\
             int x0 = 1; int x1 = 2; int x2 = 3; int x3 = 4;\n\
         {body}\
             int acc = x0 ^ x1 ^ x2 ^ x3;\n\
             for (int i = 0; i < 8; i++) acc = acc ^ a[i];\n\
             return acc & 0xff;\n\
         }}\n"
    )
}

fn stmt(cur: &mut Cursor<'_>, out: &mut String, indent: usize, depth: u8) {
    let pad = "    ".repeat(indent);
    let op = cur.next() % 6;
    match op {
        0 => {
            let v = cur.next() % NUM_VARS;
            let e = expr(cur, depth);
            out.push_str(&format!("{pad}x{v} = {e};\n"));
        }
        1 => {
            let idx = expr(cur, depth);
            let val = expr(cur, depth);
            out.push_str(&format!("{pad}a[{idx} & 7] = {val};\n"));
        }
        2 => {
            let v = cur.next() % NUM_VARS;
            let idx = expr(cur, depth);
            out.push_str(&format!("{pad}x{v} = a[{idx} & 7];\n"));
        }
        3 if depth > 0 => {
            let cond = expr(cur, depth);
            out.push_str(&format!("{pad}if ({cond}) {{\n"));
            for _ in 0..1 + cur.next() % 2 {
                stmt(cur, out, indent + 1, depth - 1);
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for _ in 0..cur.next() % 2 {
                stmt(cur, out, indent + 1, depth - 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        4 if depth > 0 => {
            let n = cur.next() % 6;
            out.push_str(&format!("{pad}for (int k = 0; k < {n}; k++) {{\n"));
            for _ in 0..1 + cur.next() % 2 {
                stmt(cur, out, indent + 1, depth - 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        _ => {
            let v = cur.next() % NUM_VARS;
            let e = expr(cur, depth);
            out.push_str(&format!("{pad}x{v} = twist({e});\n"));
        }
    }
}

fn expr(cur: &mut Cursor<'_>, depth: u8) -> String {
    let op = cur.next() % 7;
    if depth == 0 || op < 2 {
        return match op % 2 {
            0 => format!("({})", cur.next_i16()),
            _ => format!("x{}", cur.next() % NUM_VARS),
        };
    }
    let a = expr(cur, depth - 1);
    let b = expr(cur, depth - 1);
    let sym = match op {
        2 => "+",
        3 => "-",
        4 => "*",
        5 => "^",
        _ => "<",
    };
    format!("({a} {sym} {b})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_minc::parse;

    #[test]
    fn generation_is_total_and_deterministic() {
        for n in 0..128u64 {
            let bytes: Vec<u8> = (0..32).map(|i| (n.wrapping_mul(37) as u8).wrapping_add(i)).collect();
            let a = program_from_bytes(&bytes);
            let b = program_from_bytes(&bytes);
            assert_eq!(a, b);
            parse(&a).expect("every decoded program parses");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_decode() {
        parse(&program_from_bytes(&[])).expect("empty");
        parse(&program_from_bytes(&[0xff])).expect("one byte");
    }

    #[test]
    fn distinct_bytes_yield_distinct_programs() {
        let programs: std::collections::BTreeSet<String> = (0..64u8)
            .map(|b| program_from_bytes(&[b, b.wrapping_add(1), b.wrapping_mul(3), 7, 9]))
            .collect();
        assert!(programs.len() > 16, "only {} distinct programs", programs.len());
    }
}
