//! Seed-derived input mutators.
//!
//! [`mutate`] is a **pure function** of `(seed, parent, donor, dict,
//! max_len)`: every random choice comes from a [`Xoshiro256pp`] stream
//! seeded with `seed`, so the same call always yields the same child
//! input. That purity is what makes fuzzing campaigns replayable and
//! the campaign render byte-identical at any worker count —
//! `tests` below and `tests/fuzz_props.rs` assert it.
//!
//! The operator set is the classic AFL-style mix: bit flips, byte
//! sets, byte-wise arithmetic, interesting 32-bit constants, block
//! deletion/duplication, splicing with a second corpus entry, and
//! dictionary injection. Dictionary *overwrites* are biased to
//! 4-byte-aligned offsets (two opcodes out of ten) because the
//! targets' interesting slots — saved frame pointers, return
//! addresses, function-pointer words — live at word granularity.

use swsec_rng::{Rng, Xoshiro256pp};

/// 32-bit constants worth planting verbatim: boundary values for the
/// arithmetic the victims and the generated programs perform.
pub const INTERESTING: [u32; 8] = [
    0,
    1,
    0x7f,
    0xff,
    0x8000_0000,
    0x7fff_ffff,
    0xffff_ffff,
    0x0010_0000,
];

/// Number of mutation opcodes [`mutate`] draws from.
const OPS: u64 = 10;

/// Derives a child input from `parent`. `donor` is a second corpus
/// entry used by the splice operator; `dict` holds target-provided
/// tokens (function addresses, magic words); the result never exceeds
/// `max_len` bytes and is never empty.
pub fn mutate(
    seed: u64,
    parent: &[u8],
    donor: &[u8],
    dict: &[Vec<u8>],
    max_len: usize,
) -> Vec<u8> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut input = if parent.is_empty() {
        vec![0u8; 8]
    } else {
        parent.to_vec()
    };
    let ops = 1 + rng.gen_range(3); // 1..=3 stacked operators
    for _ in 0..ops {
        apply_one(&mut rng, &mut input, donor, dict, max_len);
    }
    input.truncate(max_len.max(1));
    if input.is_empty() {
        input.push(0);
    }
    input
}

fn apply_one(
    rng: &mut Xoshiro256pp,
    input: &mut Vec<u8>,
    donor: &[u8],
    dict: &[Vec<u8>],
    max_len: usize,
) {
    if input.is_empty() {
        input.push(0);
    }
    let len = input.len();
    match rng.gen_range(OPS) {
        0 => {
            // Single bit flip.
            let pos = rng.gen_range(len as u64) as usize;
            input[pos] ^= 1 << rng.gen_range(8);
        }
        1 => {
            // Random byte set.
            let pos = rng.gen_range(len as u64) as usize;
            input[pos] = rng.next_u32() as u8;
        }
        2 => {
            // Byte-wise arithmetic, ±1..=35 like AFL's ARITH stage.
            let pos = rng.gen_range(len as u64) as usize;
            let delta = (1 + rng.gen_range(35)) as u8;
            input[pos] = if rng.gen_bool() {
                input[pos].wrapping_add(delta)
            } else {
                input[pos].wrapping_sub(delta)
            };
        }
        3 => {
            // Interesting 32-bit constant, little-endian, in place.
            let word = INTERESTING[rng.gen_range(INTERESTING.len() as u64) as usize];
            overwrite(input, rng.gen_range(len as u64) as usize, &word.to_le_bytes());
        }
        4 => {
            // Delete a block (never the whole input).
            if len > 1 {
                let start = rng.gen_range(len as u64) as usize;
                let count = (1 + rng.gen_range(len as u64 / 2 + 1) as usize)
                    .min(len - 1)
                    .min(len - start);
                input.drain(start..start + count);
            }
        }
        5 => {
            // Duplicate a block to the end (growth, capped).
            let start = rng.gen_range(len as u64) as usize;
            let count = (1 + rng.gen_range(8)) as usize;
            let block: Vec<u8> =
                input[start..(start + count).min(len)].to_vec();
            input.extend_from_slice(&block);
            input.truncate(max_len.max(1));
        }
        6 => {
            // Splice: our prefix + the donor's suffix.
            if !donor.is_empty() {
                let keep = rng.gen_range(len as u64) as usize;
                let from = rng.gen_range(donor.len() as u64) as usize;
                input.truncate(keep.max(1));
                input.extend_from_slice(&donor[from..]);
                input.truncate(max_len.max(1));
            }
        }
        7 => {
            // Dictionary insert at a random position.
            if let Some(tok) = pick(rng, dict) {
                let pos = rng.gen_range(len as u64 + 1) as usize;
                let tail = input.split_off(pos);
                input.extend_from_slice(&tok);
                input.extend_from_slice(&tail);
                input.truncate(max_len.max(1));
            }
        }
        _ => {
            // Dictionary overwrite at a 4-aligned offset (two opcodes
            // land here — the word-granularity bias).
            if let Some(tok) = pick(rng, dict) {
                let aligned_slots = (len / 4) as u64 + 1;
                let pos = (rng.gen_range(aligned_slots) as usize * 4).min(len.saturating_sub(1));
                overwrite(input, pos, &tok);
            }
        }
    }
}

fn pick(rng: &mut Xoshiro256pp, dict: &[Vec<u8>]) -> Option<Vec<u8>> {
    if dict.is_empty() {
        return None;
    }
    Some(dict[rng.gen_range(dict.len() as u64) as usize].clone())
}

/// Overwrites `bytes` into `input` starting at `pos`, clipped to the
/// existing length (never grows the input).
fn overwrite(input: &mut [u8], pos: usize, bytes: &[u8]) {
    for (i, b) in bytes.iter().enumerate() {
        if let Some(slot) = input.get_mut(pos + i) {
            *slot = *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Vec<Vec<u8>> {
        vec![vec![0xde, 0xad, 0xbe, 0xef], vec![0x41; 8]]
    }

    #[test]
    fn mutation_is_pure_in_seed_and_input() {
        let parent = b"hello world".to_vec();
        let donor = b"DONORDONOR".to_vec();
        for seed in 0..64 {
            let a = mutate(seed, &parent, &donor, &dict(), 96);
            let b = mutate(seed, &parent, &donor, &dict(), 96);
            assert_eq!(a, b, "seed {seed} not reproducible");
        }
    }

    #[test]
    fn different_seeds_diversify() {
        let parent = vec![0u8; 32];
        let distinct: std::collections::BTreeSet<Vec<u8>> = (0..64)
            .map(|s| mutate(s, &parent, &parent, &dict(), 96))
            .collect();
        assert!(distinct.len() > 32, "only {} distinct children", distinct.len());
    }

    #[test]
    fn length_and_emptiness_invariants_hold() {
        for seed in 0..256 {
            let child = mutate(seed, b"abc", b"defghijklmnop", &dict(), 16);
            assert!(!child.is_empty());
            assert!(child.len() <= 16, "len {} at seed {seed}", child.len());
        }
    }

    #[test]
    fn empty_parent_is_tolerated() {
        let child = mutate(7, &[], &[], &[], 8);
        assert!(!child.is_empty() && child.len() <= 8);
    }
}
