//! The `fuzz` campaign mode: runs E18 — coverage-guided fuzzing of the
//! three attack targets — through the campaign runner.
//!
//! ```sh
//! cargo run --release -p swsec-fuzz --bin fuzz -- \
//!     [--workers N] [--seed S] [--budget N] [--minimize-budget N] \
//!     [--progress] [--telemetry out.jsonl] [--render-only] \
//!     [--no-fork-server]
//! ```
//!
//! The schedule is bounded and deterministic: a fixed attempt budget
//! per target, every mutation seed derived from `--seed` via SplitMix64
//! paths. Stdout (`--render-only`) is **byte-identical for any worker
//! count and either serve mode** — `scripts/verify.sh` diffs a 1-worker
//! against a 4-worker run and asserts the report rediscovers the E2
//! stack smash with zero fast-vs-baseline divergences. Exits non-zero
//! when a campaign cell failed.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use swsec::campaign::{run_campaign_on, CampaignConfig, CampaignTelemetry};
use swsec_fuzz::FuzzExperiment;
use swsec_obs::jsonl::meta_line;
use swsec_obs::{clear_default_sink, set_default_sink, EventMask, JsonlSink, MetricsRegistry};

fn main() {
    let mut cfg = CampaignConfig::quick();
    let mut exp = FuzzExperiment::smoke();
    let mut telemetry_path: Option<String> = None;
    let mut progress = false;
    let mut render_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a number");
            }
            "--seed" => {
                cfg.master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a number");
            }
            "--budget" => {
                exp.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget takes a number");
            }
            "--minimize-budget" => {
                exp.minimize_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--minimize-budget takes a number");
            }
            "--telemetry" => {
                telemetry_path = Some(args.next().expect("--telemetry takes a path"));
            }
            "--progress" => progress = true,
            "--render-only" => render_only = true,
            "--no-fork-server" => cfg.fork_server = false,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: fuzz [--workers N] [--seed S] [--budget N] \
                     [--minimize-budget N] [--progress] [--telemetry out.jsonl] \
                     [--render-only] [--no-fork-server]"
                );
                std::process::exit(2);
            }
        }
    }

    // Security events only, as in the campaign example: fuzzing-scale
    // control-transfer traffic goes to the coverage sinks, not the
    // telemetry dump.
    let security = EventMask::FAULT
        .union(EventMask::CANARY)
        .union(EventMask::PMA)
        .union(EventMask::GUARD)
        .union(EventMask::CELL);

    let mut telemetry = CampaignTelemetry::none();
    let mut sink = None;
    if let Some(path) = telemetry_path.as_deref() {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
        let jsonl = Arc::new(JsonlSink::with_interests(
            Box::new(BufWriter::new(file)),
            security,
        ));
        jsonl.write_line(&meta_line("source", "swsec-fuzz/bin/fuzz"));
        jsonl.write_line(&meta_line("master_seed", &cfg.master_seed.to_string()));
        set_default_sink(jsonl.clone());
        let registry = Arc::new(MetricsRegistry::new());
        telemetry.metrics = Some(registry.clone());
        sink = Some((jsonl, registry));
    }
    if progress {
        telemetry = telemetry.on_progress(|p| {
            eprintln!(
                "[{:>3}/{:>3}] {} cell {} ({:.1}ms){}",
                p.completed,
                p.total,
                p.experiment,
                p.cell,
                p.elapsed.as_secs_f64() * 1e3,
                if p.ok { "" } else { " FAILED" },
            );
        });
    }

    let report = run_campaign_on(&cfg, &[exp.leaked()], &telemetry);

    if let Some((sink, registry)) = sink {
        clear_default_sink();
        for line in registry.export_jsonl() {
            sink.write_line(&line);
        }
        sink.flush();
    }

    print!("{}", report.render());
    if !render_only {
        println!("{}", report.summary());
    }
    if !report.all_ok() {
        eprintln!(
            "fuzz: {} cell(s) failed — see the failed-cells table",
            report.failed_cells().len()
        );
        std::process::exit(1);
    }
}
