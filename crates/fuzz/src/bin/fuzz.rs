//! The `fuzz` campaign mode: runs E18 — coverage-guided fuzzing of the
//! three attack targets — through the campaign runner.
//!
//! ```sh
//! cargo run --release -p swsec-fuzz --bin fuzz -- \
//!     [--workers N] [--seed S] [--budget N] [--minimize-budget N] \
//!     [--progress] [--telemetry out.jsonl] [--render-only] \
//!     [--no-fork-server] [--profile out.folded]
//! ```
//!
//! The schedule is bounded and deterministic: a fixed attempt budget
//! per target, every mutation seed derived from `--seed` via SplitMix64
//! paths. Stdout (`--render-only`) is **byte-identical for any worker
//! count and either serve mode** — `scripts/verify.sh` diffs a 1-worker
//! against a 4-worker run and asserts the report rediscovers the E2
//! stack smash with zero fast-vs-baseline divergences. Exits non-zero
//! when a campaign cell failed.
//!
//! `--profile FILE` runs a separate deterministic profiling pass over
//! the undefended stack-smash victim and writes a **symbolized**
//! flamegraph-ready `.folded` profile to `FILE`. It profiles one
//! victim rather than the whole fuzz campaign on purpose: campaign
//! cells compile many programs at overlapping layouts, so a single
//! symbol table would misattribute frames — the single-victim pass is
//! the one place address→name resolution is sound end to end.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use swsec::attacker::VICTIM_SMASH;
use swsec::cache::ProgramCache;
use swsec::campaign::{run_campaign_on, CampaignConfig, CampaignTelemetry};
use swsec::harness::{AttackTarget, ForkServer};
use swsec_defenses::DefenseConfig;
use swsec_fuzz::FuzzExperiment;
use swsec_obs::jsonl::meta_line;
use swsec_obs::{clear_default_sink, set_default_sink, EventMask, JsonlSink, MetricsRegistry};
use swsec_vm::profile::Profiler;

/// Deterministic profiling pass: serve a fixed batch of attempts
/// against the undefended smash victim from a boot-time snapshot and
/// return the symbolized `.folded` profile. A pure function of `seed`.
fn profile_victim(seed: u64) -> String {
    let cache = ProgramCache::new();
    let mut server = ForkServer::boot(&cache, VICTIM_SMASH, DefenseConfig::none(), seed)
        .expect("smash victim compiles")
        .with_fuel(200_000);
    // Interval 16: the undefended victim retires ~46 instructions per
    // attempt and the countdown re-arms at every attempt boundary, so
    // anything coarser than ~46 would sample nothing at all.
    let prof = Arc::new(Profiler::new(16));
    server.set_profiler(Some(prof.clone()));
    for i in 0..32u64 {
        // Sweep input lengths across the overflow boundary so both the
        // benign path and the smash path show up in the flamegraph.
        let len = (i as usize * 7) % 96;
        server
            .execute(seed.wrapping_add(i), &vec![b'A'; len])
            .expect("attempt serves");
    }
    prof.folded(&server.program().symbol_table())
}

fn main() {
    let mut cfg = CampaignConfig::quick();
    let mut exp = FuzzExperiment::smoke();
    let mut telemetry_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut progress = false;
    let mut render_only = false;
    let mut no_tier2 = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a number");
            }
            "--seed" => {
                cfg.master_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes a number");
            }
            "--budget" => {
                exp.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget takes a number");
            }
            "--minimize-budget" => {
                exp.minimize_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--minimize-budget takes a number");
            }
            "--telemetry" => {
                telemetry_path = Some(args.next().expect("--telemetry takes a path"));
            }
            "--progress" => progress = true,
            "--render-only" => render_only = true,
            "--no-fork-server" => cfg.fork_server = false,
            "--no-tier2" => no_tier2 = true,
            "--profile" => {
                profile_path = Some(args.next().expect("--profile takes a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: fuzz [--workers N] [--seed S] [--budget N] \
                     [--minimize-budget N] [--progress] [--telemetry out.jsonl] \
                     [--render-only] [--no-fork-server] [--no-tier2] \
                     [--profile out.folded]"
                );
                std::process::exit(2);
            }
        }
    }

    // Security events only, as in the campaign example: fuzzing-scale
    // control-transfer traffic goes to the coverage sinks, not the
    // telemetry dump.
    let security = EventMask::FAULT
        .union(EventMask::CANARY)
        .union(EventMask::PMA)
        .union(EventMask::GUARD)
        .union(EventMask::CELL);

    // `--no-tier2` pins every machine the campaign boots to the tier-1
    // fast path. verify.sh diffs this render against a tiered run: the
    // reports (and the coverage feedback that steers the campaign) must
    // be byte-identical either way.
    if no_tier2 {
        swsec_vm::cpu::set_default_tier2(false);
    }

    let mut telemetry = CampaignTelemetry::none();
    let mut sink = None;
    if let Some(path) = telemetry_path.as_deref() {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
        let jsonl = Arc::new(JsonlSink::with_interests(
            Box::new(BufWriter::new(file)),
            security,
        ));
        jsonl.write_line(&meta_line("source", "swsec-fuzz/bin/fuzz"));
        jsonl.write_line(&meta_line("master_seed", &cfg.master_seed.to_string()));
        set_default_sink(jsonl.clone());
        let registry = Arc::new(MetricsRegistry::new());
        telemetry.metrics = Some(registry.clone());
        sink = Some((jsonl, registry));
    }
    if progress {
        telemetry = telemetry.on_progress(|p| {
            eprintln!(
                "[{:>3}/{:>3}] {} cell {} ({:.1}ms){}",
                p.completed,
                p.total,
                p.experiment,
                p.cell,
                p.elapsed.as_secs_f64() * 1e3,
                if p.ok { "" } else { " FAILED" },
            );
        });
    }

    if let Some(path) = profile_path.as_deref() {
        let folded = profile_victim(cfg.master_seed);
        std::fs::write(path, folded)
            .unwrap_or_else(|e| panic!("cannot write profile {path}: {e}"));
    }

    let report = run_campaign_on(&cfg, &[exp.leaked()], &telemetry);

    if let Some((sink, registry)) = sink {
        clear_default_sink();
        for line in registry.export_jsonl() {
            sink.write_line(&line);
        }
        sink.flush();
    }

    print!("{}", report.render());
    if !render_only {
        println!("{}", report.summary());
    }
    if !report.all_ok() {
        eprintln!(
            "fuzz: {} cell(s) failed — see the failed-cells table",
            report.failed_cells().len()
        );
        std::process::exit(1);
    }
}
