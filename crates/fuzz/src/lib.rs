//! `swsec-fuzz` — a deterministic, offline, coverage-guided snapshot
//! fuzzer and differential conformance suite for the swsec laboratory.
//!
//! The fuzzer closes the loop the paper's two attacker models leave
//! open: instead of *scripted* attacks (E2–E4, E14) it **searches**
//! for attack inputs, guided by the security events the machine
//! already emits. The pieces:
//!
//! * **Coverage** — a [`swsec_obs::CoverageSink`] hashes
//!   control-transfer edges into a fixed bitmap and reserves slots for
//!   rare security events (faults, canary trips, PMA violations), so
//!   an input that provokes a *new kind* of trouble is always
//!   interesting;
//! * **Mutation** ([`mutate`]) — pure seed-derived operators over a
//!   parent input, with target dictionaries (function addresses,
//!   frame-pointer words) biased to word-aligned offsets;
//! * **Corpus** ([`corpus`]) — coverage-fingerprint deduplicated,
//!   energy-weighted toward inputs that opened rare-event slots;
//! * **Targets** ([`targets`]) — victim programs behind the
//!   [`ForkServer`](swsec::harness::ForkServer), the MinC compiler
//!   judged against its reference interpreter, and fast-path-vs-
//!   baseline differential VM execution, all through the unified
//!   [`AttackTarget`](swsec::harness::AttackTarget) surface;
//! * **Minimization** ([`minimize`]) — findings shrink while their
//!   class reproduces.
//!
//! Everything derives from one master seed through the
//! [`swsec_rng::derive`] paths, every target execution replays from
//! `(run_seed, input)`, and the campaign integration
//! ([`FuzzExperiment`], E18) renders byte-identically at any worker
//! count — `same seed + same budget ⇒ same findings report` is a hard
//! invariant, tested here and asserted by `scripts/verify.sh`.

#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod minimize;
pub mod mutate;
pub mod targets;

use std::collections::BTreeSet;
use std::sync::Arc;

use swsec::campaign::{CampaignConfig, CampaignCtx};
use swsec::experiments::Experiment;
use swsec::report::{ExperimentId, Report, Table};
use swsec_obs::{CoverageSink, GlobalCoverage};
use swsec_rng::{derive, stream};

use crate::corpus::Corpus;
use crate::targets::{CompilerTarget, DiffTarget, FuzzTarget, VictimTarget};

/// Tuning knobs of one fuzzing run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed: every mutation and scheduling choice derives from
    /// it.
    pub master_seed: u64,
    /// Mutated-input executions to spend (excludes seeds and
    /// minimization).
    pub budget: u64,
    /// Execution cap per finding for the minimizer.
    pub minimize_budget: u64,
}

/// One deduplicated finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The finding class (deduplication key).
    pub class: String,
    /// 1-based attempt number that found it (0 = a starter seed).
    pub attempt: u64,
    /// The input as found.
    pub input: Vec<u8>,
    /// The minimized input (same class).
    pub minimized: Vec<u8>,
}

/// The result of fuzzing one target.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Target name.
    pub target: &'static str,
    /// Total target executions (seeds + attempts + minimization).
    pub executed: u64,
    /// Corpus entries retained.
    pub corpus_len: usize,
    /// Coverage slots reached.
    pub coverage: usize,
    /// Deduplicated, minimized findings in discovery order.
    pub findings: Vec<Finding>,
    /// Fast-vs-baseline divergences (differential targets).
    pub divergences: u64,
}

// Derivation path tags under the master seed: parent/donor selection
// and mutation, per attempt index.
const DRAW_SELECT: u64 = 1;
const DRAW_MUTATE: u64 = 2;

/// Runs the coverage-guided loop against one target.
pub fn fuzz_target(target: &mut dyn FuzzTarget, cfg: &FuzzConfig) -> FuzzOutcome {
    let sink = Arc::new(CoverageSink::new());
    target.attach_coverage(Arc::clone(&sink));
    let run_seed = target.run_seed();
    let dict = target.dictionary();
    let max_len = target.max_len();
    let mut global = GlobalCoverage::new();
    let mut corpus = Corpus::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen = BTreeSet::new();
    let mut executed = 0u64;

    // Starter seeds: they establish baseline coverage, and a seed that
    // already classifies (a target shipped broken) is finding zero.
    for seed_input in target.seeds() {
        sink.reset();
        let Ok(out) = target.execute(run_seed, &seed_input) else {
            continue;
        };
        executed += 1;
        let map = sink.take_map();
        let gain = global.observe(&map);
        if let Some(class) = target.classify(&out) {
            if seen.insert(class.clone()) {
                let (minimized, spent) =
                    minimize::minimize(target, run_seed, &seed_input, &class, cfg.minimize_budget);
                executed += spent;
                findings.push(Finding {
                    class,
                    attempt: 0,
                    input: seed_input.clone(),
                    minimized,
                });
            }
        }
        if !corpus.add(seed_input.clone(), map.fingerprint(), &gain) && corpus.is_empty() {
            // Never fuzz from an empty corpus, even for a target that
            // emits no events at all.
            corpus.add_forced(seed_input, map.fingerprint());
        }
    }

    for attempt in 0..cfg.budget {
        let input = {
            let mut sel = stream(cfg.master_seed, &[DRAW_SELECT, attempt]);
            let parent = corpus.select(&mut sel).input.clone();
            let donor = corpus.select(&mut sel).input.clone();
            mutate::mutate(
                derive(cfg.master_seed, &[DRAW_MUTATE, attempt]),
                &parent,
                &donor,
                &dict,
                max_len,
            )
        };
        sink.reset();
        let Ok(out) = target.execute(run_seed, &input) else {
            continue;
        };
        executed += 1;
        // Take the map before any minimization runs pollute the sink.
        let map = sink.take_map();
        let gain = global.observe(&map);
        if let Some(class) = target.classify(&out) {
            if seen.insert(class.clone()) {
                let (minimized, spent) =
                    minimize::minimize(target, run_seed, &input, &class, cfg.minimize_budget);
                executed += spent;
                findings.push(Finding {
                    class,
                    attempt: attempt + 1,
                    input: input.clone(),
                    minimized,
                });
            }
        }
        corpus.add(input, map.fingerprint(), &gain);
    }

    FuzzOutcome {
        target: target.name(),
        executed,
        corpus_len: corpus.len(),
        coverage: global.covered(),
        findings,
        divergences: target.divergences(),
    }
}

/// E18 — the fuzzing campaign as an [`Experiment`]: one cell per
/// target, assembled into a summary, a findings table and a verdicts
/// table.
///
/// E18 lives outside the E1–E16 registry (the registry sits below this
/// crate in the dependency graph); run it through
/// [`swsec::campaign::run_campaign_on`], like the fault-demo
/// experiment E17.
#[derive(Debug, Clone, Copy)]
pub struct FuzzExperiment {
    /// Mutated-input executions per target.
    pub budget: u64,
    /// Minimizer execution cap per finding.
    pub minimize_budget: u64,
}

impl FuzzExperiment {
    /// The deterministic smoke configuration `scripts/verify.sh` runs:
    /// enough budget to rediscover the E2 stack smash from coverage
    /// signal alone, small enough to finish in seconds.
    pub fn smoke() -> FuzzExperiment {
        FuzzExperiment {
            budget: 2_000,
            minimize_budget: 192,
        }
    }

    /// Leaks `self` to the `'static` lifetime
    /// [`swsec::campaign::run_campaign_on`] requires (a few bytes per
    /// campaign, the same pattern as the fault-demo experiment).
    pub fn leaked(self) -> &'static FuzzExperiment {
        Box::leak(Box::new(self))
    }
}

/// The three target cells, in report order.
const TARGETS: [&str; 3] = ["victim-smash", "minc-compiler", "vm-differential"];

/// Renders an input as hex, elided past 20 bytes.
fn hex_preview(bytes: &[u8]) -> String {
    let shown: String = bytes.iter().take(20).map(|b| format!("{b:02x}")).collect();
    if bytes.len() > 20 {
        format!("{shown}… ({} bytes)", bytes.len())
    } else {
        shown
    }
}

impl Experiment for FuzzExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::FUZZ
    }

    fn title(&self) -> &'static str {
        "Coverage-guided fuzzing and differential conformance"
    }

    fn cells(&self, _cfg: &CampaignConfig) -> usize {
        TARGETS.len()
    }

    fn run_cell(&self, cfg: &CampaignConfig, ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        let seed = cfg.cell_seed(self.id(), cell);
        let mut target: Box<dyn FuzzTarget> = match cell {
            0 => Box::new(VictimTarget::new(&ctx.cache, seed, cfg.serve_mode())),
            1 => Box::new(CompilerTarget::new(seed)),
            _ => Box::new(DiffTarget::new(&ctx.cache, seed)),
        };
        let outcome = fuzz_target(
            target.as_mut(),
            &FuzzConfig {
                master_seed: seed,
                budget: self.budget,
                minimize_budget: self.minimize_budget,
            },
        );

        let mut summary = Table::new(
            "cell summary",
            &["target", "executions", "corpus", "coverage slots", "findings", "divergences"],
        );
        summary.row(vec![
            outcome.target.to_string(),
            outcome.executed.to_string(),
            outcome.corpus_len.to_string(),
            outcome.coverage.to_string(),
            outcome.findings.len().to_string(),
            outcome.divergences.to_string(),
        ]);
        let mut found = Table::new(
            "cell findings",
            &["target", "class", "attempt", "found len", "min len", "minimized"],
        );
        for f in &outcome.findings {
            found.row(vec![
                outcome.target.to_string(),
                f.class.clone(),
                f.attempt.to_string(),
                f.input.len().to_string(),
                f.minimized.len().to_string(),
                hex_preview(&f.minimized),
            ]);
        }
        vec![summary, found]
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        let mut summary = Table::new(
            "E18: coverage-guided fuzzing over the attack harness",
            &["target", "executions", "corpus", "coverage slots", "findings", "divergences"],
        );
        let mut found = Table::new(
            "E18: findings (deduplicated by class, minimized)",
            &["target", "class", "attempt", "found len", "min len", "minimized"],
        );
        let mut exploit = false;
        let mut divergences: u64 = 0;
        let mut compiler_findings: u64 = 0;
        let mut classes: u64 = 0;
        for cell in &cells {
            for row in &cell[0].rows {
                divergences += row[5].parse::<u64>().unwrap_or(0);
                summary.rows.push(row.clone());
            }
            for row in &cell[1].rows {
                classes += 1;
                if row[1].starts_with("exploit:") {
                    exploit = true;
                }
                if row[0] == "minc-compiler" {
                    compiler_findings += 1;
                }
                found.rows.push(row.clone());
            }
        }
        let mut verdicts = Table::new("E18: conformance verdicts", &["check", "result"]);
        verdicts.row(vec![
            "known exploit path rediscovered (victim-smash)".to_string(),
            if exploit { "yes".to_string() } else { "NO".to_string() },
        ]);
        verdicts.row(vec![
            "fast-path vs baseline divergences".to_string(),
            divergences.to_string(),
        ]);
        verdicts.row(vec![
            "compiler conformance findings".to_string(),
            compiler_findings.to_string(),
        ]);
        verdicts.row(vec!["distinct finding classes".to_string(), classes.to_string()]);

        let mut report = Report::new(self.id(), self.title());
        report.tables.push(summary);
        report.tables.push(found);
        report.tables.push(verdicts);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::tests::MockTarget;
    use swsec::cache::ProgramCache;
    use swsec::campaign::{run_campaign_on, CampaignTelemetry};
    use swsec::harness::ServeMode;

    fn smoke_cfg(seed: u64) -> FuzzConfig {
        FuzzConfig {
            master_seed: seed,
            budget: 2_000,
            minimize_budget: 192,
        }
    }

    #[test]
    fn engine_finds_the_needle_in_the_mock_target() {
        let outcome = fuzz_target(
            &mut MockTarget::default(),
            &FuzzConfig {
                master_seed: 11,
                budget: 400,
                minimize_budget: 128,
            },
        );
        let hit = outcome.findings.iter().find(|f| f.class == "needle");
        let hit = hit.expect("a random 0x7f byte within 400 mutations");
        assert_eq!(hit.minimized, vec![0x7f], "minimizer should strip to the needle");
        assert!(outcome.corpus_len >= 1 && outcome.coverage > 0);
    }

    #[test]
    fn victim_fuzzing_rediscovers_the_stack_smash() {
        let cache = ProgramCache::new();
        let mut target = VictimTarget::new(&cache, 9, ServeMode::Fork);
        let outcome = fuzz_target(&mut target, &smoke_cfg(9));
        let exploit = outcome
            .findings
            .iter()
            .find(|f| f.class.starts_with("exploit:"));
        let exploit = exploit.unwrap_or_else(|| {
            panic!(
                "no exploit within budget; classes found: {:?}",
                outcome.findings.iter().map(|f| &f.class).collect::<Vec<_>>()
            )
        });
        // The minimized reproducer still needs to reach into the
        // return slot at offset 56 — though not necessarily through it:
        // the minimizer legitimately discovers *partial* overwrites
        // (grant shares its upper address bytes with the original
        // return address, so rewriting the low bytes alone diverts).
        assert!(exploit.minimized.len() >= 57, "{:?}", exploit.minimized.len());
        // Crash classes surface alongside the exploit.
        assert!(outcome.findings.iter().any(|f| f.class.starts_with("crash:")));
    }

    #[test]
    fn fuzzing_is_deterministic_and_serve_mode_invariant() {
        let digest = |mode| {
            let cache = ProgramCache::new();
            let mut target = VictimTarget::new(&cache, 13, mode);
            let outcome = fuzz_target(
                &mut target,
                &FuzzConfig {
                    master_seed: 13,
                    budget: 300,
                    minimize_budget: 64,
                },
            );
            (
                outcome.executed,
                outcome.corpus_len,
                outcome.coverage,
                outcome
                    .findings
                    .iter()
                    .map(|f| (f.class.clone(), f.attempt, f.minimized.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        let fork = digest(ServeMode::Fork);
        assert_eq!(fork, digest(ServeMode::Fork), "same mode must replay exactly");
        assert_eq!(fork, digest(ServeMode::Rebuild), "serve mode must not leak into results");
    }

    #[test]
    fn differential_fuzzing_finds_zero_divergences() {
        let cache = ProgramCache::new();
        let mut target = DiffTarget::new(&cache, 17);
        let outcome = fuzz_target(
            &mut target,
            &FuzzConfig {
                master_seed: 17,
                budget: 250,
                minimize_budget: 64,
            },
        );
        assert_eq!(outcome.divergences, 0, "{:?}", outcome.findings);
        assert!(outcome.findings.is_empty());
    }

    #[test]
    fn compiler_fuzzing_finds_zero_nonconformances() {
        let mut target = CompilerTarget::new(23);
        let outcome = fuzz_target(
            &mut target,
            &FuzzConfig {
                master_seed: 23,
                budget: 120,
                minimize_budget: 64,
            },
        );
        assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
    }

    #[test]
    fn e18_campaign_render_is_byte_identical_across_worker_counts() {
        let run = |workers| {
            let mut cfg = CampaignConfig::quick();
            cfg.workers = workers;
            cfg.master_seed = 41;
            let exp = FuzzExperiment {
                budget: 150,
                minimize_budget: 48,
            }
            .leaked();
            run_campaign_on(&cfg, &[exp], &CampaignTelemetry::none()).render()
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn e18_report_carries_the_verdict_rows() {
        let cfg = CampaignConfig::quick();
        let exp = FuzzExperiment {
            budget: 60,
            minimize_budget: 32,
        }
        .leaked();
        let report = run_campaign_on(&cfg, &[exp], &CampaignTelemetry::none());
        let render = report.render();
        assert!(render.contains("E18"));
        assert!(render.contains("fast-path vs baseline divergences"));
        assert!(report.all_ok());
    }
}
