//! Test-case minimization: shrink a finding's input while preserving
//! its finding class.
//!
//! The reducer is a bounded ddmin-style pass — halving block removal
//! from coarse to fine, then byte normalization to `'A'` — where every
//! candidate is accepted only if the target, re-executed under the
//! *same* run seed, classifies it into the *same* class string. The
//! execution budget caps total work; the result is deterministic
//! because candidate order is a pure function of the input and every
//! target execution is replayable.

use crate::targets::FuzzTarget;

/// Minimizes `input` while `target` keeps classifying it as `class`.
/// Returns the reduced input and the number of executions spent.
pub fn minimize(
    target: &mut dyn FuzzTarget,
    run_seed: u64,
    input: &[u8],
    class: &str,
    budget: u64,
) -> (Vec<u8>, u64) {
    let mut best = input.to_vec();
    let mut execs = 0u64;

    // Phase 1: block removal, halving chunk sizes.
    let mut chunk = best.len() / 2;
    while chunk >= 1 && execs < budget {
        let mut start = 0;
        while start < best.len() && execs < budget {
            if best.len() <= 1 {
                break;
            }
            let end = (start + chunk).min(best.len());
            let mut cand = best.clone();
            cand.drain(start..end);
            if !cand.is_empty() && reproduces(target, run_seed, &cand, class, &mut execs) {
                best = cand;
                // Retry the same offset: the bytes shifted down.
            } else {
                start += chunk;
            }
        }
        chunk /= 2;
    }

    // Phase 2: normalize bytes to 'A' where the class survives.
    for i in 0..best.len() {
        if execs >= budget || best[i] == b'A' {
            continue;
        }
        let mut cand = best.clone();
        cand[i] = b'A';
        if reproduces(target, run_seed, &cand, class, &mut execs) {
            best = cand;
        }
    }

    (best, execs)
}

fn reproduces(
    target: &mut dyn FuzzTarget,
    run_seed: u64,
    cand: &[u8],
    class: &str,
    execs: &mut u64,
) -> bool {
    *execs += 1;
    match target.execute(run_seed, cand) {
        Ok(out) => target.classify(&out).as_deref() == Some(class),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::tests::MockTarget;

    #[test]
    fn minimizer_shrinks_while_preserving_the_class() {
        // MockTarget classifies "needle" iff the input contains 0x7f.
        let mut target = MockTarget::default();
        let mut input = vec![b'Z'; 40];
        input[23] = 0x7f;
        let (min, execs) = minimize(&mut target, 0, &input, "needle", 512);
        assert_eq!(min, vec![0x7f], "got {min:?}");
        assert!(execs > 0 && execs <= 512);
    }

    #[test]
    fn minimization_is_deterministic() {
        let mut input = vec![0x33; 64];
        input[10] = 0x7f;
        input[50] = 0x7f;
        let (a, _) = minimize(&mut MockTarget::default(), 0, &input, "needle", 256);
        let (b, _) = minimize(&mut MockTarget::default(), 0, &input, "needle", 256);
        assert_eq!(a, b);
        assert!(a.len() < input.len());
    }

    #[test]
    fn budget_zero_returns_the_input_unchanged() {
        let input = vec![0x7f; 8];
        let (min, execs) = minimize(&mut MockTarget::default(), 0, &input, "needle", 0);
        assert_eq!(min, input);
        assert_eq!(execs, 0);
    }
}
