//! The pluggable fuzz targets, all speaking the unified
//! [`AttackTarget`] surface.
//!
//! A [`FuzzTarget`] extends [`AttackTarget`] with what the engine
//! needs beyond raw execution: starter seeds, a dictionary of
//! interesting tokens, a coverage-sink attachment point, and a
//! **classifier** that maps an [`AttemptOutcome`] to a finding class
//! (or none). Three targets ship:
//!
//! * [`VictimTarget`] — the E2/E3 stack-smash victim behind a
//!   [`ForkServer`]; findings are exploit paths (`SECRET` leaked) and
//!   distinct crash classes;
//! * [`CompilerTarget`] — fuzz bytes decode to well-formed safe MinC
//!   programs ([`crate::gen`]); the compiled machine run is judged
//!   against the reference interpreter with the exact
//!   [`swsec::equiv`] semantics, so any non-equivalence is a compiler
//!   finding;
//! * [`DiffTarget`] — the same input runs on a fast-path and a
//!   baseline VM; any divergence in outcome, observable I/O or
//!   architectural stats is a crash-class finding.

use std::sync::Arc;

use swsec::attacker::VICTIM_SMASH;
use swsec::cache::ProgramCache;
use swsec::equiv::{classify_observations, Verdict};
use swsec::harness::{AttackTarget, AttemptOutcome, ForkServer, ServeMode};
use swsec::loader;
use swsec_defenses::DefenseConfig;
use swsec_minc::interp::{self, InterpOutcome};
use swsec_minc::{parse, CompileError, CompiledProgram};
use swsec_obs::CoverageSink;
use swsec_vm::cpu::{Fault, RunOutcome};
use swsec_vm::io::IoBus;
use swsec_vm::trace::ExecStats;

use crate::gen;

/// What the fuzzing engine needs from a target beyond
/// [`AttackTarget::execute`].
pub trait FuzzTarget: AttackTarget {
    /// Short stable name, used in reports and findings.
    fn name(&self) -> &'static str;

    /// The seed every execution runs under (layout/canary draws); the
    /// fuzzer varies *inputs*, never the victim's launch randomness.
    fn run_seed(&self) -> u64;

    /// Starter corpus inputs.
    fn seeds(&self) -> Vec<Vec<u8>>;

    /// Tokens worth injecting verbatim (function addresses, magic
    /// words). Empty by default.
    fn dictionary(&self) -> Vec<Vec<u8>> {
        Vec::new()
    }

    /// Hard cap on input length.
    fn max_len(&self) -> usize;

    /// Routes the target's security events into `sink` for the rest of
    /// its life (snapshot restores must not detach it).
    fn attach_coverage(&mut self, sink: Arc<CoverageSink>);

    /// Maps the outcome of the **latest** `execute` to a finding class.
    /// Must be pure in the executed input: re-executing the same input
    /// yields the same class, which the minimizer relies on.
    fn classify(&mut self, outcome: &AttemptOutcome) -> Option<String>;

    /// Fast-vs-baseline divergences observed so far (differential
    /// targets only).
    fn divergences(&self) -> u64 {
        0
    }
}

/// Coarse, address-free crash class of a faulting outcome — coarse so
/// that deduplication by class does not explode on input-dependent
/// fault addresses.
fn crash_class(outcome: &RunOutcome) -> Option<String> {
    let RunOutcome::Fault(fault) = outcome else {
        return None;
    };
    Some(match fault {
        Fault::Mem(_) => "memory fault".into(),
        Fault::Pma(_) => "PMA violation".into(),
        Fault::Decode { .. } => "undecodable instruction".into(),
        Fault::DivideByZero { .. } => "divide by zero".into(),
        Fault::SoftwareTrap { code, .. } => format!("defensive trap (code {code})"),
        Fault::ShadowStackMismatch { .. } => "shadow-stack mismatch".into(),
        Fault::ShadowStackUnderflow { .. } => "shadow-stack underflow".into(),
        Fault::UnknownSyscall { .. } => "unknown syscall".into(),
    })
}

/// Per-attempt fuel for the victim and differential targets: the
/// benign victim path needs a few thousand instructions, so this caps
/// wild-jump loops without ever starving a legitimate run.
const TARGET_FUEL: u64 = 200_000;

// ---------------------------------------------------------------- victim

/// The E2/E3 stack-smash victim ([`VICTIM_SMASH`]) served by a
/// [`ForkServer`], hunting exploit paths and crash classes.
pub struct VictimTarget {
    server: ForkServer,
    run_seed: u64,
    dict: Vec<Vec<u8>>,
}

impl VictimTarget {
    /// Boots the victim (no defenses — the E2 baseline) under `mode`.
    pub fn new(cache: &ProgramCache, run_seed: u64, mode: ServeMode) -> VictimTarget {
        let server = ForkServer::boot(cache, VICTIM_SMASH, DefenseConfig::none(), run_seed)
            .expect("victim compiles")
            .with_fuel(TARGET_FUEL)
            .with_mode(mode);
        let grant = server
            .program()
            .function_addr("grant")
            .expect("grant exists");
        let bp = 0xbfff_0000u32;
        let mut combo = bp.to_le_bytes().to_vec();
        combo.extend_from_slice(&grant.to_le_bytes());
        let dict = vec![grant.to_le_bytes().to_vec(), bp.to_le_bytes().to_vec(), combo];
        VictimTarget {
            server,
            run_seed,
            dict,
        }
    }

    /// Switches the tier-2 block engine on the underlying server, for
    /// coverage-parity audits (attempts — and the coverage maps they
    /// accumulate — are bit-for-bit identical either way).
    pub fn set_tier2(&mut self, on: bool) {
        self.server.set_tier2(on);
    }
}

impl AttackTarget for VictimTarget {
    fn execute(&mut self, seed: u64, input: &[u8]) -> Result<AttemptOutcome, CompileError> {
        self.server.execute(seed, input)
    }
}

impl FuzzTarget for VictimTarget {
    fn name(&self) -> &'static str {
        "victim-smash"
    }

    fn run_seed(&self) -> u64 {
        self.run_seed
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        vec![b"hello".to_vec(), vec![b'A'; 64], vec![0u8; 32]]
    }

    fn dictionary(&self) -> Vec<Vec<u8>> {
        self.dict.clone()
    }

    fn max_len(&self) -> usize {
        96 // the victim's read() cap; longer inputs are dead weight
    }

    fn attach_coverage(&mut self, sink: Arc<CoverageSink>) {
        // The devirtualized attach: tier-2 blocks bump the map in
        // place; tier-1 steps feed it through the event stream. Maps
        // are byte-identical either way.
        self.server.set_coverage(Some(sink));
    }

    fn classify(&mut self, outcome: &AttemptOutcome) -> Option<String> {
        if outcome.emitted(1, b"SECRET") {
            return Some("exploit: return hijacked into grant(), SECRET emitted".into());
        }
        crash_class(&outcome.outcome).map(|c| format!("crash: {c}"))
    }
}

// -------------------------------------------------------------- compiler

/// Conformance fuzzing of the MinC compiler: inputs decode to safe
/// programs, and the compiled machine must match the reference
/// interpreter observationally. Compile failures and non-equivalent
/// runs are findings.
pub struct CompilerTarget {
    run_seed: u64,
    config: DefenseConfig,
    fuel: u64,
    sink: Option<Arc<CoverageSink>>,
    last_finding: Option<String>,
}

impl CompilerTarget {
    /// A compiler target judging under the baseline configuration.
    pub fn new(run_seed: u64) -> CompilerTarget {
        CompilerTarget {
            run_seed,
            config: DefenseConfig::none(),
            fuel: 5_000_000,
            sink: None,
            last_finding: None,
        }
    }

    /// An outcome for attempts that never reached the machine (front
    /// end or code generator rejected the program) — the finding lives
    /// in `last_finding`, the outcome is a neutral halt.
    fn synthetic_outcome() -> AttemptOutcome {
        AttemptOutcome {
            outcome: RunOutcome::Halted(0),
            canary_value: None,
            io: IoBus::default(),
            stats: ExecStats::default(),
        }
    }
}

impl AttackTarget for CompilerTarget {
    fn execute(&mut self, seed: u64, input: &[u8]) -> Result<AttemptOutcome, CompileError> {
        self.last_finding = None;
        let src = gen::program_from_bytes(input);
        let unit = match parse(&src) {
            Ok(unit) => unit,
            Err(err) => {
                self.last_finding =
                    Some(format!("compiler: front end rejected a well-formed program ({err})"));
                return Ok(Self::synthetic_outcome());
            }
        };
        let reference = interp::run(&unit, &[], self.fuel);
        let mut session = match loader::launch(&unit, self.config, seed) {
            Ok(session) => session,
            Err(err) => {
                self.last_finding =
                    Some(format!("compiler: compile/load failed on a safe program ({err})"));
                return Ok(Self::synthetic_outcome());
            }
        };
        if let Some(sink) = &self.sink {
            session.machine.set_coverage(Some(Arc::clone(sink)));
        }
        let outcome = session.run(self.fuel);
        let machine_io = session.machine.io().observable();
        // The generated family is safe and the reference always exits
        // within fuel, so anything but strict equivalence — including a
        // "safe" early stop — is a compiler finding.
        match classify_observations(&reference.outcome, &reference.io, &outcome, &machine_io) {
            Verdict::Equivalent => {}
            Verdict::Compromised { evidence } => {
                self.last_finding = Some(format!("miscompile: {evidence}"));
            }
            Verdict::SafeDivergence { cause } => {
                self.last_finding =
                    Some(format!("miscompile: machine stopped early on a safe program ({cause})"));
            }
            Verdict::Inconclusive => {
                if !matches!(reference.outcome, InterpOutcome::OutOfFuel) {
                    self.last_finding =
                        Some("miscompile: machine ran out of fuel where the source terminates".into());
                }
            }
        }
        let stats = session.machine.stats();
        let io = std::mem::take(session.machine.io_mut());
        Ok(AttemptOutcome {
            outcome,
            canary_value: session.canary_value,
            io,
            stats,
        })
    }
}

impl FuzzTarget for CompilerTarget {
    fn name(&self) -> &'static str {
        "minc-compiler"
    }

    fn run_seed(&self) -> u64 {
        self.run_seed
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        vec![
            vec![0u8; 16],
            (0..64u8).collect(),
            vec![0xff; 32],
        ]
    }

    fn max_len(&self) -> usize {
        64 // shape bytes; the decoder wraps, more adds nothing
    }

    fn attach_coverage(&mut self, sink: Arc<CoverageSink>) {
        self.sink = Some(sink);
    }

    fn classify(&mut self, _outcome: &AttemptOutcome) -> Option<String> {
        self.last_finding.clone()
    }
}

// ------------------------------------------------------------ diff (VM)

/// Differential execution: the same victim and input on a tier-2
/// machine, a fast-path (tier 1 only) machine and an uncached
/// baseline machine. The three must agree on outcome, observable I/O
/// and architectural statistics; a divergence is a crash-class
/// finding in the VM itself.
pub struct DiffTarget {
    program: Arc<CompiledProgram>,
    config: DefenseConfig,
    run_seed: u64,
    sink: Option<Arc<CoverageSink>>,
    last_finding: Option<String>,
    divergences: u64,
}

impl DiffTarget {
    /// Compiles the victim once (through `cache`) for both machines.
    pub fn new(cache: &ProgramCache, run_seed: u64) -> DiffTarget {
        let config = DefenseConfig::none();
        let opts = loader::plan_options(&config, run_seed);
        let program = cache
            .compile(VICTIM_SMASH, &opts)
            .expect("victim compiles");
        DiffTarget {
            program,
            config,
            run_seed,
            sink: None,
            last_finding: None,
            divergences: 0,
        }
    }
}

impl AttackTarget for DiffTarget {
    fn execute(&mut self, seed: u64, input: &[u8]) -> Result<AttemptOutcome, CompileError> {
        self.last_finding = None;
        let mut tiered = loader::launch_compiled(&self.program, self.config, seed)?;
        let mut fast = loader::launch_compiled(&self.program, self.config, seed)?;
        let mut base = loader::launch_compiled(&self.program, self.config, seed)?;
        tiered.machine.set_fast_path(true);
        tiered.machine.set_tier2(true);
        fast.machine.set_fast_path(true);
        fast.machine.set_tier2(false);
        base.machine.set_fast_path(false);
        base.machine.set_tier2(false);
        if let Some(sink) = &self.sink {
            tiered.machine.set_coverage(Some(Arc::clone(sink)));
        }
        tiered.machine.io_mut().feed_input(0, input);
        fast.machine.io_mut().feed_input(0, input);
        base.machine.io_mut().feed_input(0, input);
        let tiered_outcome = tiered.run(TARGET_FUEL);
        let fast_outcome = fast.run(TARGET_FUEL);
        let base_outcome = base.run(TARGET_FUEL);
        let tiered_io = tiered.machine.io().observable();
        let fast_io = fast.machine.io().observable();
        let base_io = base.machine.io().observable();
        let tiered_stats = tiered.machine.stats().architectural();
        let fast_stats = fast.machine.stats().architectural();
        let base_stats = base.machine.stats().architectural();
        let pairs_agree = tiered_outcome == fast_outcome
            && fast_outcome == base_outcome
            && tiered_io == fast_io
            && fast_io == base_io
            && tiered_stats == fast_stats
            && fast_stats == base_stats;
        if !pairs_agree {
            self.divergences += 1;
            self.last_finding = Some(format!(
                "divergence: tier-2 {tiered_outcome:?} vs fast-path {fast_outcome:?} \
                 vs baseline {base_outcome:?} (io equal: {}/{}, stats equal: {}/{})",
                tiered_io == fast_io,
                fast_io == base_io,
                tiered_stats == fast_stats,
                fast_stats == base_stats,
            ));
        }
        let stats = tiered.machine.stats();
        let io = std::mem::take(tiered.machine.io_mut());
        Ok(AttemptOutcome {
            outcome: tiered_outcome,
            canary_value: tiered.canary_value,
            io,
            stats,
        })
    }
}

impl FuzzTarget for DiffTarget {
    fn name(&self) -> &'static str {
        "vm-differential"
    }

    fn run_seed(&self) -> u64 {
        self.run_seed
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        vec![b"hello".to_vec(), vec![b'A'; 64], vec![b'A'; 96]]
    }

    fn dictionary(&self) -> Vec<Vec<u8>> {
        let grant = self
            .program
            .function_addr("grant")
            .expect("grant exists");
        vec![grant.to_le_bytes().to_vec(), 0xbfff_0000u32.to_le_bytes().to_vec()]
    }

    fn max_len(&self) -> usize {
        96
    }

    fn attach_coverage(&mut self, sink: Arc<CoverageSink>) {
        self.sink = Some(sink);
    }

    fn classify(&mut self, _outcome: &AttemptOutcome) -> Option<String> {
        self.last_finding.clone()
    }

    fn divergences(&self) -> u64 {
        self.divergences
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A synthetic target for engine/minimizer unit tests: classifies
    /// "needle" iff the input contains a 0x7f byte. No machine behind
    /// it — outcomes are neutral halts.
    #[derive(Default)]
    pub struct MockTarget {
        sink: Option<Arc<CoverageSink>>,
    }

    impl AttackTarget for MockTarget {
        fn execute(&mut self, _seed: u64, input: &[u8]) -> Result<AttemptOutcome, CompileError> {
            // Feed the input back through the coverage sink as fake
            // edges so the engine's corpus logic has signal to chew on.
            if let Some(sink) = &self.sink {
                use swsec_obs::{ControlKind, EventSink, SecurityEvent};
                for (i, b) in input.iter().enumerate() {
                    sink.record(&SecurityEvent::ControlTransfer {
                        kind: ControlKind::Call,
                        from: i as u32,
                        to: u32::from(*b),
                    });
                }
            }
            Ok(AttemptOutcome {
                outcome: RunOutcome::Halted(u32::from(input.contains(&0x7f))),
                canary_value: None,
                io: IoBus::default(),
                stats: ExecStats::default(),
            })
        }
    }

    impl FuzzTarget for MockTarget {
        fn name(&self) -> &'static str {
            "mock"
        }

        fn run_seed(&self) -> u64 {
            0
        }

        fn seeds(&self) -> Vec<Vec<u8>> {
            vec![vec![0u8; 16]]
        }

        fn max_len(&self) -> usize {
            64
        }

        fn attach_coverage(&mut self, sink: Arc<CoverageSink>) {
            self.sink = Some(sink);
        }

        fn classify(&mut self, outcome: &AttemptOutcome) -> Option<String> {
            matches!(outcome.outcome, RunOutcome::Halted(1)).then(|| "needle".to_string())
        }
    }

    #[test]
    fn victim_target_classifies_the_canonical_smash() {
        let cache = ProgramCache::new();
        let mut target = VictimTarget::new(&cache, 7, ServeMode::Fork);
        let grant = target.server.program().function_addr("grant").unwrap();
        let mut payload = vec![b'A'; 52];
        payload.extend_from_slice(&0xbfff_0000u32.to_le_bytes());
        payload.extend_from_slice(&grant.to_le_bytes());
        let out = target.execute(7, &payload).unwrap();
        let class = target.classify(&out).expect("finding");
        assert!(class.starts_with("exploit:"), "{class}");
        // The benign input is no finding at all.
        let out = target.execute(7, b"hello").unwrap();
        assert_eq!(target.classify(&out), None);
    }

    #[test]
    fn compiler_target_finds_nothing_on_the_safe_family() {
        let mut target = CompilerTarget::new(3);
        for n in 0..24u8 {
            let bytes: Vec<u8> = (0..24).map(|i| n.wrapping_mul(17).wrapping_add(i)).collect();
            let out = target.execute(3, &bytes).unwrap();
            assert_eq!(target.classify(&out), None, "input {n}");
        }
    }

    #[test]
    fn victim_coverage_fingerprints_are_tier_invariant() {
        // The novelty signal steering a campaign must not depend on
        // which tier served an attempt: per-attempt coverage
        // fingerprints from a tiered victim (blocks bumping the edge
        // map from precomputed slots, inline caches chaining) must be
        // byte-identical to the tier-1 hash-at-transfer path.
        let cache = ProgramCache::new();
        let run = |tier2: bool| {
            let mut target = VictimTarget::new(&cache, 11, ServeMode::Fork);
            target.set_tier2(tier2);
            let sink = Arc::new(CoverageSink::new());
            target.attach_coverage(Arc::clone(&sink));
            let mut fingerprints = Vec::new();
            let mut hits = 0u64;
            for i in 0..48usize {
                let len = (i * 7) % 96;
                let out = target.execute(11, &vec![b'A'; len]).unwrap();
                hits += out.stats.tier2_hits;
                fingerprints.push(sink.take_map().fingerprint());
            }
            (fingerprints, hits)
        };
        let (tiered_fps, tiered_hits) = run(true);
        let (fast_fps, fast_hits) = run(false);
        assert_eq!(tiered_fps, fast_fps, "coverage diverges between tiers");
        assert!(tiered_hits > 0, "tier 2 never engaged across 48 attempts");
        assert_eq!(fast_hits, 0, "the pinned tier-1 run served tier-2 blocks");
    }

    #[test]
    fn diff_target_sees_no_divergence_even_on_smashing_inputs() {
        let cache = ProgramCache::new();
        let mut target = DiffTarget::new(&cache, 5);
        let grant = target.program.function_addr("grant").unwrap();
        let mut smash = vec![b'A'; 56];
        smash.extend_from_slice(&grant.to_le_bytes());
        for input in [b"hello".to_vec(), vec![0xff; 96], smash] {
            let out = target.execute(5, &input).unwrap();
            assert_eq!(target.classify(&out), None);
        }
        assert_eq!(target.divergences(), 0);
    }
}
