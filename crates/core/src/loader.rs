//! The hardened loader: compiles and launches a MinC program under a
//! chosen [`DefenseConfig`].
//!
//! The loader owns the run-time halves of the §III-C1 countermeasures:
//!
//! * **DEP** — page-permission enforcement is switched on or off on the
//!   machine;
//! * **ASLR** — segment bases are randomized per launch from the
//!   configured entropy;
//! * **canary value** — a fresh unpredictable word is installed into
//!   the program's canary cell at launch;
//! * **shadow stack** — enabled on the machine when configured.
//!
//! It also provides the *attacker's* address arithmetic
//! ([`Session::frame_base`]): given a call path, where a frame's base
//! pointer will be — exact without ASLR, a guess with it.

use swsec_rng::{stream, Rng};

use swsec_defenses::DefenseConfig;
use swsec_minc::ast::Unit;
use swsec_minc::{compile, CompileError, CompileOptions, CompiledProgram};
use swsec_vm::cpu::{Machine, RunOutcome};

/// A launched program: the machine plus everything known about the
/// binary running on it.
#[derive(Debug)]
pub struct Session {
    /// The machine, ready to run from the program entry point.
    pub machine: Machine,
    /// The compiled program (layout as actually loaded, i.e. after any
    /// ASLR slide).
    pub program: CompiledProgram,
    /// The defense configuration in force.
    pub config: DefenseConfig,
    /// The canary value installed this launch (if canaries are on).
    pub canary_value: Option<u32>,
}

impl Session {
    /// Runs the machine for at most `fuel` instructions.
    pub fn run(&mut self, fuel: u64) -> RunOutcome {
        self.machine.run(fuel)
    }

    /// Computes where the base pointer of the innermost frame will be
    /// for a call path starting at `main`, e.g.
    /// `[("main", 0), ("handle", 1)]` (function name, argument count).
    ///
    /// This is the deterministic frame arithmetic an attacker performs
    /// on a local copy of the binary. It is exact for the *loaded*
    /// layout; an attacker without a leak must do it against the
    /// default layout and hope ASLR is off.
    pub fn frame_base(&self, path: &[(&str, u32)]) -> Result<u32, CompileError> {
        frame_base_for(&self.program, path)
    }

    /// Address of the named local variable in the innermost frame of
    /// `path`.
    pub fn local_addr(&self, path: &[(&str, u32)], local: &str) -> Result<u32, CompileError> {
        let bp = self.frame_base(path)?;
        let (func, _) = path.last().expect("path must not be empty");
        let frame = self
            .program
            .frames
            .get(*func)
            .ok_or_else(|| CompileError {
                message: format!("no frame info for `{func}`"),
            })?;
        let slot = frame
            .locals
            .iter()
            .find(|(name, _)| name == local)
            .map(|(_, s)| s)
            .ok_or_else(|| CompileError {
                message: format!("no local `{local}` in `{func}`"),
            })?;
        Ok(bp.wrapping_add(slot.offset as u32))
    }
}

/// Frame arithmetic against an arbitrary compiled program (see
/// [`Session::frame_base`]).
pub fn frame_base_for(
    program: &CompiledProgram,
    path: &[(&str, u32)],
) -> Result<u32, CompileError> {
    // `_start` begins with sp at stack_top - STACK_HEADROOM.
    let mut sp = program.layout.stack_top - swsec_minc::codegen::STACK_HEADROOM;
    let mut bp = 0u32;
    for (func, nargs) in path {
        let frame = program.frames.get(*func).ok_or_else(|| CompileError {
            message: format!("no frame info for `{func}`"),
        })?;
        // Caller pushes the arguments, `call` pushes the return address,
        // `enter` pushes the saved bp and establishes the new frame.
        sp = sp.wrapping_sub(4 * nargs + 4 + 4);
        bp = sp;
        sp = sp.wrapping_sub(frame.frame_size);
    }
    Ok(bp)
}

/// Independent sub-streams of one launch seed, so the compile plan and
/// the load-time randomness can be reproduced separately (the compile
/// half is what the [`crate::cache::ProgramCache`] memoizes).
mod draw {
    /// ASLR segment slides.
    pub const ASLR: u64 = 0;
    /// The canary value installed at launch.
    pub const CANARY: u64 = 1;
}

/// The compile options `config` implies for a launch with `seed`:
/// hardening switches, plus the ASLR-slid layout when ASLR is on.
///
/// This is the pure "compile plan" half of [`launch`]; feeding it to
/// [`swsec_minc::compile`] — or to a [`crate::cache::ProgramCache`],
/// which memoizes on exactly these options — and then loading the
/// result with [`launch_compiled`] reproduces `launch` bit for bit.
pub fn plan_options(config: &DefenseConfig, seed: u64) -> CompileOptions {
    let mut opts = CompileOptions {
        harden: config.harden_options(),
        ..CompileOptions::default()
    };
    if let Some(aslr) = config.aslr() {
        let mut rng = stream(seed, &[draw::ASLR]);
        opts.layout.0 = aslr.randomize(opts.layout.0, &mut rng);
    }
    opts
}

/// Loads an already-compiled `program` and applies the run-time halves
/// of `config` (DEP, shadow stack, canary installation).
///
/// The program must have been compiled from the options
/// [`plan_options`] yields for the same `(config, seed)` pair —
/// otherwise the layout in the image and the advertised configuration
/// disagree.
///
/// # Errors
///
/// Returns a [`CompileError`] when loading or canary installation
/// fails.
pub fn launch_compiled(
    program: &CompiledProgram,
    config: DefenseConfig,
    seed: u64,
) -> Result<Session, CompileError> {
    let _boot = swsec_obs::span::enter_with(swsec_obs::SpanKind::Boot, || format!("seed {seed}"));
    let mut machine = Machine::new();
    program.load(&mut machine)?;
    machine.mem_mut().set_enforce(config.dep);
    machine.set_shadow_stack(config.shadow_stack);
    let canary_value = arm_session(&mut machine, program, &config, seed)?;
    Ok(Session {
        machine,
        program: program.clone(),
        config,
        canary_value,
    })
}

/// Applies the per-launch, *seed-dependent* half of a launch to an
/// already-loaded machine: seeds the machine RNG and installs the
/// canary drawn from `seed` (when canaries are on), returning the
/// installed value.
///
/// This is the exact tail of [`launch_compiled`], factored out so the
/// fork-server harness ([`crate::harness::ForkServer`]) can replay it
/// after a snapshot restore — per-attempt state is then bit-identical
/// to a fresh launch *by construction*, because both paths run this one
/// function.
///
/// # Errors
///
/// Returns a [`CompileError`] when canary installation fails.
pub fn arm_session(
    machine: &mut Machine,
    program: &CompiledProgram,
    config: &DefenseConfig,
    seed: u64,
) -> Result<Option<u32>, CompileError> {
    machine.seed_rng(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    if config.canary {
        let value = stream(seed, &[draw::CANARY]).next_u32();
        program.install_canary(machine, value)?;
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Compiles `unit` under `config` and launches it.
///
/// `seed` drives every random choice (ASLR slides, canary value), so a
/// launch is exactly reproducible; different seeds model different
/// process launches.
///
/// # Errors
///
/// Returns a [`CompileError`] when compilation or loading fails.
pub fn launch(unit: &Unit, config: DefenseConfig, seed: u64) -> Result<Session, CompileError> {
    let opts = plan_options(&config, seed);
    let program = compile(unit, &opts)?;
    launch_compiled(&program, config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_minc::parse;
    use swsec_vm::cpu::RunOutcome;

    const ECHO: &str =
        "void main() { char buf[8]; int n = read(0, buf, 8); write(1, buf, n); }";

    #[test]
    fn launch_runs_programs() {
        let unit = parse(ECHO).unwrap();
        let mut session = launch(&unit, DefenseConfig::none(), 1).unwrap();
        session.machine.io_mut().feed_input(0, b"hi");
        assert_eq!(session.run(100_000), RunOutcome::Halted(0));
        assert_eq!(session.machine.io().output(1), b"hi");
    }

    #[test]
    fn dep_flag_controls_enforcement() {
        let unit = parse(ECHO).unwrap();
        let off = launch(&unit, DefenseConfig::none(), 1).unwrap();
        assert!(!off.machine.mem().enforce());
        let mut on = DefenseConfig::none();
        on.dep = true;
        let on_session = launch(&unit, on, 1).unwrap();
        assert!(on_session.machine.mem().enforce());
    }

    #[test]
    fn canary_value_is_seed_dependent() {
        let unit = parse(ECHO).unwrap();
        let mut cfg = DefenseConfig::none();
        cfg.canary = true;
        let a = launch(&unit, cfg, 1).unwrap();
        let b = launch(&unit, cfg, 1).unwrap();
        let c = launch(&unit, cfg, 2).unwrap();
        assert_eq!(a.canary_value, b.canary_value);
        assert_ne!(a.canary_value, c.canary_value);
    }

    #[test]
    fn aslr_randomizes_layout_per_seed() {
        let unit = parse(ECHO).unwrap();
        let mut cfg = DefenseConfig::none();
        cfg.aslr_bits = Some(8);
        let a = launch(&unit, cfg, 1).unwrap();
        let b = launch(&unit, cfg, 2).unwrap();
        assert_ne!(a.program.layout, b.program.layout);
        // Same seed, same layout.
        let a2 = launch(&unit, cfg, 1).unwrap();
        assert_eq!(a.program.layout, a2.program.layout);
    }

    #[test]
    fn frame_arithmetic_predicts_buffer_address() {
        // Verify the oracle against actual execution: the program leaks
        // the real address of its buffer via pointer arithmetic.
        let src = "void handle(int fd) { char buf[16]; char *p = buf; \
                   int lo = 0; int i = 0; \
                   write(1, buf, 0); \
                   exit((p - buf) + 0); }";
        // Instead of smuggling the raw address out (MinC pointers don't
        // convert to int), check against the VM: run until the program
        // writes into buf and confirm the oracle's address holds data.
        let full = format!("{src}\nvoid main() {{ handle(0); }}");
        let unit = parse(&full).unwrap();
        let session = launch(&unit, DefenseConfig::none(), 1).unwrap();
        let addr = session
            .local_addr(&[("main", 0), ("handle", 1)], "buf")
            .unwrap();
        // The oracle address must lie in the mapped stack region.
        let stack_base = session.program.layout.stack_top - session.program.layout.stack_size;
        assert!(addr > stack_base && addr < session.program.layout.stack_top);
    }

    #[test]
    fn frame_arithmetic_matches_actual_write() {
        // Ground truth: run a program that stores a known marker into a
        // local, then inspect memory at the oracle-predicted address.
        let src = "void handle(int fd) { int marker = 0; char buf[16]; \
                   marker = 0x7a7a7a7a; buf[0] = 1; \
                   while (read(0, buf, 16) > 0) { write(1, buf, 1); } }\n\
                   void main() { handle(3); }";
        let unit = parse(src).unwrap();
        let mut session = launch(&unit, DefenseConfig::none(), 1).unwrap();
        // Run to completion (no input: the loop exits immediately).
        assert!(session.run(1_000_000).is_halted());
        let addr = session
            .local_addr(&[("main", 0), ("handle", 1)], "marker")
            .unwrap();
        assert_eq!(session.machine.mem().peek_u32(addr).unwrap(), 0x7a7a_7a7a);
    }

    #[test]
    fn unknown_function_in_path_errors() {
        let unit = parse(ECHO).unwrap();
        let session = launch(&unit, DefenseConfig::none(), 1).unwrap();
        assert!(session.frame_base(&[("nope", 0)]).is_err());
    }
}
