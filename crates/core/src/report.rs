//! Plain-text report tables for experiment output.
//!
//! Every experiment driver returns one or more [`Table`]s; examples and
//! the benchmark harness print them, and `EXPERIMENTS.md` quotes them.

use std::fmt;

/// A titled table with a header row and data rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["attack", "verdict"]);
        t.row(vec!["stack smash", "COMPROMISED"]);
        t.row(vec!["rop", "blocked"]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("stack smash  COMPROMISED"));
        assert!(s.contains("rop          blocked"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one"]);
    }
}
