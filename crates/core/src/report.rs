//! Plain-text report tables for experiment output.
//!
//! Every experiment driver returns one or more [`Table`]s; examples and
//! the benchmark harness print them, and `EXPERIMENTS.md` quotes them.
//!
//! The campaign API adds two uniform types on top: [`ExperimentId`]
//! names a driver (E1–E16), and [`Report`] is the structured output
//! every [`crate::experiments::Experiment`] returns — an id, a title
//! and tables of structured rows, never a bespoke struct.

use std::fmt;

/// A titled table with a header row and data rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Identifies one of the experiment drivers (`E1`–`E16`, plus the
/// reserved test-only id `E17` and the fuzzing experiment `E18`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExperimentId(u8);

impl ExperimentId {
    /// Number of *registered* experiments (`E1`–`E16`).
    pub const REGISTERED: usize = 16;

    /// The id reserved for the test-only fault-demo experiment, which
    /// is deliberately **not** in the registry: its cells panic, stall
    /// and flake on purpose to exercise the campaign failure model.
    pub const FAULT_DEMO: ExperimentId = ExperimentId(17);

    /// The id of the coverage-guided fuzzing experiment, implemented in
    /// the `swsec-fuzz` crate. Not in the registry — the registry lives
    /// below `swsec-fuzz` in the crate graph — but runnable through
    /// [`crate::campaign::run_campaign_on`] like any experiment.
    pub const FUZZ: ExperimentId = ExperimentId(18);

    /// All registered experiment ids, in presentation order.
    pub const ALL: [ExperimentId; ExperimentId::REGISTERED] = {
        let mut ids = [ExperimentId(0); ExperimentId::REGISTERED];
        let mut i = 0;
        while i < ExperimentId::REGISTERED {
            ids[i] = ExperimentId(i as u8 + 1);
            i += 1;
        }
        ids
    };

    /// The id for experiment number `n` (1–18; 17 is the reserved
    /// test-only [`FAULT_DEMO`](ExperimentId::FAULT_DEMO) id, 18 the
    /// [`FUZZ`](ExperimentId::FUZZ) experiment).
    ///
    /// # Panics
    ///
    /// Panics when `n` is outside `1..=18`.
    pub fn new(n: u8) -> ExperimentId {
        assert!((1..=18).contains(&n), "experiment number {n} out of range");
        ExperimentId(n)
    }

    /// The experiment number (1–18).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Zero-based position in presentation order.
    pub fn index(self) -> usize {
        usize::from(self.0) - 1
    }

    /// The number as a seed-derivation path element.
    pub fn seed_path(self) -> u64 {
        u64::from(self.0)
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// Uniform experiment output: id, title, and structured tables.
///
/// `Report` is the entire boundary between an experiment and the
/// campaign runner — equality (and hence campaign determinism checks)
/// compare the full structured contents, and [`Report::render`] is a
/// pure function of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Which experiment produced this.
    pub id: ExperimentId,
    /// Human-readable experiment title.
    pub title: String,
    /// The structured results.
    pub tables: Vec<Table>,
}

impl Report {
    /// A report with no tables yet.
    pub fn new(id: ExperimentId, title: impl Into<String>) -> Report {
        Report {
            id,
            title: title.into(),
            tables: Vec::new(),
        }
    }

    /// Renders the full report deterministically.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} — {}", self.id, self.title)?;
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Wraps preformatted text (a source listing, a disassembly) as a
/// single-column table so it can travel inside a [`Report`].
pub fn text_panel(title: impl Into<String>, text: &str) -> Table {
    let mut t = Table::new(title, &["text"]);
    for line in text.lines() {
        t.row(vec![line.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_enumerate_e1_to_e16() {
        assert_eq!(ExperimentId::ALL.len(), 16);
        assert_eq!(ExperimentId::ALL[0].to_string(), "E1");
        assert_eq!(ExperimentId::ALL[15].to_string(), "E16");
        assert_eq!(ExperimentId::new(3).index(), 2);
        // The fault-demo and fuzz ids exist but are not registered ids.
        assert_eq!(ExperimentId::FAULT_DEMO.to_string(), "E17");
        assert!(!ExperimentId::ALL.contains(&ExperimentId::FAULT_DEMO));
        assert_eq!(ExperimentId::FUZZ.to_string(), "E18");
        assert_eq!(ExperimentId::new(18), ExperimentId::FUZZ);
        assert!(!ExperimentId::ALL.contains(&ExperimentId::FUZZ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn experiment_id_rejects_zero() {
        ExperimentId::new(0);
    }

    #[test]
    fn report_renders_title_and_tables() {
        let mut r = Report::new(ExperimentId::new(2), "demo");
        let mut t = Table::new("inner", &["a"]);
        t.row(vec!["x"]);
        r.tables.push(t);
        let s = r.render();
        assert!(s.contains("# E2 — demo"));
        assert!(s.contains("## inner"));
    }

    #[test]
    fn text_panels_preserve_lines() {
        let t = text_panel("listing", "one\ntwo");
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[1][0], "two");
    }

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["attack", "verdict"]);
        t.row(vec!["stack smash", "COMPROMISED"]);
        t.row(vec!["rop", "blocked"]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("stack smash  COMPROMISED"));
        assert!(s.contains("rop          blocked"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one"]);
    }
}
