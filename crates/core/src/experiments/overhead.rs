//! Experiment E5 — countermeasure run-time overhead (§III-C1/C2).
//!
//! The paper's cost claims, measured deterministically in executed
//! instructions: stack canaries are "cheap and straightforward"
//! (constant work per call), while the run-time memory-safety checks
//! that make testing effective "impose a performance overhead that is
//! unacceptable in production" (work per memory access).

use swsec_defenses::runtime_check::measure_overhead;
use swsec_minc::{parse, HardenOptions};

use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::Experiment;
use crate::report::{ExperimentId, Report, Table};

/// The benchmark workloads: compute-heavy MinC programs exercising
/// calls, array traffic and byte scanning.
pub fn workloads() -> Vec<(&'static str, String)> {
    let checksum = "\
int main() {\n\
    char data[256];\n\
    for (int i = 0; i < 256; i++) data[i] = i * 7;\n\
    int sum = 0;\n\
    for (int round = 0; round < 20; round++) {\n\
        for (int i = 0; i < 256; i++) sum = sum + data[i];\n\
    }\n\
    return sum & 0xff;\n\
}\n";
    let sort = "\
int main() {\n\
    int a[64];\n\
    for (int i = 0; i < 64; i++) a[i] = (i * 37 + 11) % 64;\n\
    for (int i = 1; i < 64; i++) {\n\
        int key = a[i];\n\
        int j = i - 1;\n\
        while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j = j - 1; }\n\
        a[j + 1] = key;\n\
    }\n\
    int ok = 1;\n\
    for (int i = 1; i < 64; i++) { if (a[i - 1] > a[i]) ok = 0; }\n\
    return ok;\n\
}\n";
    let calls = "\
int leaf(int x) { char pad[16]; pad[0] = x; return pad[0] + 1; }\n\
int main() {\n\
    int s = 0;\n\
    for (int i = 0; i < 300; i++) s = s + leaf(i);\n\
    return s & 0xff;\n\
}\n";
    vec![
        ("checksum", checksum.to_string()),
        ("insertion-sort", sort.to_string()),
        ("call-heavy", calls.to_string()),
    ]
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Workload name.
    pub workload: &'static str,
    /// Baseline instruction count.
    pub baseline: u64,
    /// Relative overhead of canaries (e.g. `0.02` = 2 %).
    pub canary: f64,
    /// Relative overhead of software bounds checks.
    pub bounds: f64,
    /// Relative overhead of both combined.
    pub both: f64,
}

/// The measured sweep.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// One row per workload.
    pub rows: Vec<OverheadRow>,
}

impl OverheadReport {
    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E5: instruction-count overhead of compiler countermeasures",
            &["workload", "baseline instrs", "canary", "bounds checks", "both"],
        );
        for r in &self.rows {
            t.row(vec![
                r.workload.to_string(),
                r.baseline.to_string(),
                format!("{:+.1}%", r.canary * 100.0),
                format!("{:+.1}%", r.bounds * 100.0),
                format!("{:+.1}%", r.both * 100.0),
            ]);
        }
        t
    }

    /// Mean overhead across workloads for (canary, bounds).
    pub fn means(&self) -> (f64, f64) {
        let n = self.rows.len() as f64;
        (
            self.rows.iter().map(|r| r.canary).sum::<f64>() / n,
            self.rows.iter().map(|r| r.bounds).sum::<f64>() / n,
        )
    }
}

/// Measures one workload under all three hardening mixes.
fn measure_workload(name: &'static str, src: &str) -> OverheadRow {
    let mut canary_only = HardenOptions::none();
    canary_only.stack_canary = true;
    let mut bounds_only = HardenOptions::none();
    bounds_only.bounds_checks = true;
    let mut both = HardenOptions::none();
    both.stack_canary = true;
    both.bounds_checks = true;

    let unit = parse(src).expect("workload parses");
    let c = measure_overhead(&unit, canary_only, &[], 50_000_000).expect("clean runs");
    let b = measure_overhead(&unit, bounds_only, &[], 50_000_000).expect("clean runs");
    let cb = measure_overhead(&unit, both, &[], 50_000_000).expect("clean runs");
    OverheadRow {
        workload: name,
        baseline: c.baseline,
        canary: c.relative(),
        bounds: b.relative(),
        both: cb.relative(),
    }
}

/// Runs the overhead sweep.
pub fn compute() -> OverheadReport {
    let rows = workloads()
        .into_iter()
        .map(|(name, src)| measure_workload(name, &src))
        .collect();
    OverheadReport { rows }
}

/// E5 under the campaign API: one cell per benchmark workload.
pub struct OverheadExperiment;

impl Experiment for OverheadExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::new(5)
    }

    fn title(&self) -> &'static str {
        "Countermeasure instruction overhead"
    }

    fn cells(&self, _cfg: &CampaignConfig) -> usize {
        workloads().len()
    }

    fn run_cell(&self, _cfg: &CampaignConfig, _ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        let (name, src) = workloads().swap_remove(cell);
        let report = OverheadReport {
            rows: vec![measure_workload(name, &src)],
        };
        vec![report.table()]
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        // Each cell rendered a one-row copy of the final table; fold
        // the rows back together.
        let mut table = cells[0][0].clone();
        for cell in &cells[1..] {
            table.rows.extend(cell[0].rows.iter().cloned());
        }
        let mut report = Report::new(self.id(), self.title());
        report.tables.push(table);
        report
    }
}

#[cfg(test)]
mod tests {
    
    use super::compute as run;

    #[test]
    fn bounds_cost_dominates_canary_cost_on_data_heavy_code() {
        // The paper's split is per *kind* of work: canaries cost a
        // constant per call, memory-safety checks cost per access. On
        // the array-heavy workloads the per-access cost dominates…
        let report = run();
        for r in report
            .rows
            .iter()
            .filter(|r| r.workload == "checksum" || r.workload == "insertion-sort")
        {
            assert!(
                r.bounds > 3.0 * r.canary.max(0.002),
                "{}: bounds {:.3} vs canary {:.3}",
                r.workload,
                r.bounds,
                r.canary
            );
            assert!(r.bounds > 0.03, "{}: bounds {:.3}", r.workload, r.bounds);
        }
        // …while on the call-heavy workload the canary's per-call cost
        // shows up instead.
        let calls = report
            .rows
            .iter()
            .find(|r| r.workload == "call-heavy")
            .expect("workload present");
        assert!(calls.canary > 0.01, "canary per-call cost visible");
    }

    #[test]
    fn combined_is_at_least_each_alone() {
        let report = run();
        for r in &report.rows {
            assert!(r.both >= r.bounds * 0.9, "{}: both {} vs bounds {}", r.workload, r.both, r.bounds);
        }
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("baseline"));
    }
}
