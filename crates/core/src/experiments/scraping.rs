//! Experiment E7 — Figure 2: the secret module under the machine-code
//! attacker.
//!
//! The paper's point, reproduced end-to-end: the module is *bug-free*,
//! so the I/O attacker gets nothing — but a machine-code attacker
//! (malicious module, or kernel malware) simply reads the secrets out
//! of the address space, unless the module is loaded into a protected
//! module.

use swsec_attacks::Scraper;
use swsec_defenses::DefenseConfig;
use swsec_minc::{compile, parse, CompileOptions};
use swsec_pma::{ModuleImage, Platform};
use swsec_vm::cpu::Machine;
use swsec_vm::mem::Perm;
use swsec_vm::policy::ReentryPolicy;

use crate::equiv::{self, Verdict};
use crate::report::Table;

/// The paper's Figure 2 secret module, verbatim in MinC.
pub const SECRET_MODULE: &str = "\
static int tries_left = 3;\n\
static int PIN = 1234;\n\
static int secret = 666;\n\
int get_secret(int provided_pin) {\n\
    if (tries_left > 0) {\n\
        if (PIN == provided_pin) {\n\
            tries_left = 3;\n\
            return secret;\n\
        } else { tries_left--; return 0; }\n\
    } else return 0;\n\
}\n";

/// Where the module lives in these experiments.
pub const MODULE_CODE_BASE: u32 = 0x0a00_0000;
/// Base of the module's data segment.
pub const MODULE_DATA_BASE: u32 = 0x0a10_0000;

/// Compiles the Figure 2 module as a loadable image.
pub fn secret_module_image() -> ModuleImage {
    let unit = parse(SECRET_MODULE).expect("module parses");
    let mut opts = CompileOptions {
        no_start: true,
        ..CompileOptions::default()
    };
    opts.layout.0.text_base = MODULE_CODE_BASE;
    opts.layout.0.data_base = MODULE_DATA_BASE;
    ModuleImage::from_compiled(&compile(&unit, &opts).expect("module compiles"))
}

/// One scraping trial.
#[derive(Debug, Clone)]
pub struct ScrapeTrial {
    /// Who is scraping.
    pub attacker: &'static str,
    /// Whether the module was loaded under PMA protection.
    pub protected: bool,
    /// Whether the 666 secret was found.
    pub found_secret: bool,
    /// Whether the 1234 PIN was found.
    pub found_pin: bool,
}

/// Full E7 results.
#[derive(Debug, Clone)]
pub struct ScrapeReport {
    /// The scraping trials.
    pub trials: Vec<ScrapeTrial>,
    /// Verdict of the I/O attacker against the bug-free module.
    pub io_attacker_verdict: Verdict,
}

impl ScrapeReport {
    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E7: memory scraping vs the Figure 2 secret module",
            &["attacker", "module protection", "secret (666)", "PIN (1234)"],
        );
        t.row(vec![
            "I/O attacker (wrong PINs)".to_string(),
            "n/a (module is bug-free)".to_string(),
            format!("{}", self.io_attacker_verdict),
            "-".to_string(),
        ]);
        for trial in &self.trials {
            t.row(vec![
                trial.attacker.to_string(),
                if trial.protected { "PMA" } else { "none" }.to_string(),
                if trial.found_secret { "SCRAPED" } else { "hidden" }.to_string(),
                if trial.found_pin { "SCRAPED" } else { "hidden" }.to_string(),
            ]);
        }
        t
    }
}

fn machine_with_unprotected_module(image: &ModuleImage) -> Machine {
    let mut m = Machine::new();
    m.mem_mut()
        .map(image.code_base(), image.code().len().max(1) as u32, Perm::RX)
        .expect("maps");
    m.mem_mut().poke_bytes(image.code_base(), image.code()).expect("pokes");
    m.mem_mut()
        .map(image.data_base(), image.data().len().max(1) as u32, Perm::RW)
        .expect("maps");
    m.mem_mut().poke_bytes(image.data_base(), image.data()).expect("pokes");
    // A page for the malicious module's own code.
    m.mem_mut().map(0x0900_0000, 0x1000, Perm::RX).expect("maps");
    m
}

fn machine_with_protected_module(image: &ModuleImage) -> Machine {
    let mut platform = Platform::new([0x42; 32]);
    let mut m = Machine::new();
    platform
        .load_module(&mut m, image, ReentryPolicy::EntryPointsOnly)
        .expect("loads");
    m.mem_mut().map(0x0900_0000, 0x1000, Perm::RX).expect("maps");
    m
}

/// Runs the E7 experiment.
pub fn compute() -> ScrapeReport {
    let image = secret_module_image();
    let mut trials = Vec::new();
    for protected in [false, true] {
        let machine = if protected {
            machine_with_protected_module(&image)
        } else {
            machine_with_unprotected_module(&image)
        };
        for (attacker, scraper) in [
            ("malicious module (user code)", Scraper::user(0x0900_0000)),
            ("kernel malware", Scraper::kernel()),
        ] {
            trials.push(ScrapeTrial {
                attacker,
                protected,
                found_secret: !scraper.scan_word(&machine, 666).is_empty(),
                found_pin: !scraper.scan_word(&machine, 1234).is_empty(),
            });
        }
    }

    // The I/O attacker: a driver program links the module and exposes it
    // over input; with wrong PINs the compiled behaviour matches the
    // source exactly (no vulnerability, no attack).
    let combined = format!(
        "{SECRET_MODULE}\n\
         void main() {{\n\
             char req[4];\n\
             read(0, req, 4);\n\
             int pin = req[0] + (req[1] << 8);\n\
             int s = get_secret(pin);\n\
             if (s != 0) {{ write(1, \"YES\", 3); }} else {{ write(1, \"NO\", 2); }}\n\
         }}"
    );
    let unit = parse(&combined).expect("combined parses");
    let io_attacker_verdict = equiv::compare(&unit, &[0xFF, 0xFF, 0, 0], DefenseConfig::none(), 5, 1_000_000)
        .expect("compiles")
        .verdict;

    ScrapeReport {
        trials,
        io_attacker_verdict,
    }
}


/// E7 under the campaign API.
pub struct ScrapingExperiment;

impl crate::experiments::Experiment for ScrapingExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(7)
    }

    fn title(&self) -> &'static str {
        "Figure 2: memory scraping vs PMA"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        vec![report.table()]
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::compute as run;

    #[test]
    fn unprotected_module_is_scraped_by_everyone() {
        let r = run();
        for t in r.trials.iter().filter(|t| !t.protected) {
            assert!(t.found_secret, "{} should find the secret", t.attacker);
            assert!(t.found_pin, "{} should find the PIN", t.attacker);
        }
    }

    #[test]
    fn pma_hides_the_module_from_user_and_kernel() {
        let r = run();
        for t in r.trials.iter().filter(|t| t.protected) {
            assert!(!t.found_secret, "{} must not find the secret", t.attacker);
            assert!(!t.found_pin, "{} must not find the PIN", t.attacker);
        }
    }

    #[test]
    fn io_attacker_cannot_deviate_a_bug_free_module() {
        let r = run();
        assert_eq!(r.io_attacker_verdict, Verdict::Equivalent);
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("kernel malware"));
    }
}
