//! Experiment E15 (extension) — explicit deallocation: use-after-free
//! exploitation and quarantine.
//!
//! §III-A: "a program has a temporal vulnerability if the program
//! accesses a cell that was once allocated to the program, but has
//! since been deallocated. Such deallocation can happen implicitly or
//! explicitly." E2 demonstrated the implicit case (a dead stack
//! frame); this experiment covers the explicit case with the classic
//! heap attack:
//!
//! 1. a privileged record (`session`, first byte = `is_admin`) is
//!    allocated and freed;
//! 2. the allocator — first-fit over a LIFO free list, like every
//!    classic `malloc` — hands the same chunk to the next same-size
//!    request, an attacker-filled `name` buffer;
//! 3. the dangling `session` pointer now reads attacker bytes: the
//!    authorization check consults attacker-controlled memory.
//!
//! The reference semantics trap the dangling read; the machine is
//! compromised. A quarantine allocator (never recycle chunks — the
//! memory-for-safety trade of ASan-style allocators) removes the
//! aliasing and defeats the attack.

use swsec_minc::interp::{self, InterpOutcome};
use swsec_minc::{compile, parse, CompileOptions, HardenOptions};
use swsec_vm::cpu::Machine;

use crate::report::Table;

/// The use-after-free victim.
pub const VICTIM_UAF: &str = "\
void main() {\n\
    char *session = alloc(16);\n\
    session[0] = 0;\n\
    free(session);\n\
    char *name = alloc(16);\n\
    int n = read(0, name, 16);\n\
    if (session[0] != 0) { write(1, \"ADMIN\", 5); }\n\
    else { write(1, \"USER\", 4); }\n\
}\n";

/// One trial row.
#[derive(Debug, Clone)]
pub struct UafTrial {
    /// Allocator variant.
    pub allocator: &'static str,
    /// Input description.
    pub input: &'static str,
    /// Output the machine produced.
    pub output: String,
    /// Whether the attacker got ADMIN.
    pub compromised: bool,
}

/// Full E15 results.
#[derive(Debug, Clone)]
pub struct UafReport {
    /// The trials.
    pub trials: Vec<UafTrial>,
    /// What the source semantics say about the dangling read.
    pub source_verdict: String,
}

impl UafReport {
    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E15: use-after-free vs the allocator (explicit temporal vulnerability)",
            &["allocator", "input", "machine output", "attack"],
        );
        for trial in &self.trials {
            t.row(vec![
                trial.allocator.to_string(),
                trial.input.to_string(),
                trial.output.clone(),
                if trial.compromised {
                    "COMPROMISED"
                } else {
                    "blocked"
                }
                .to_string(),
            ]);
        }
        t
    }
}

fn run_victim(quarantine: bool, input: &[u8]) -> String {
    let unit = parse(VICTIM_UAF).expect("victim parses");
    let opts = CompileOptions {
        harden: HardenOptions {
            heap_quarantine: quarantine,
            ..HardenOptions::none()
        },
        ..CompileOptions::default()
    };
    let prog = compile(&unit, &opts).expect("victim compiles");
    let mut m = Machine::new();
    prog.load(&mut m).expect("loads");
    m.io_mut().feed_input(0, input);
    assert!(m.run(1_000_000).is_halted());
    String::from_utf8_lossy(m.io().output(1)).into_owned()
}

/// Runs the E15 experiment.
pub fn compute() -> UafReport {
    let benign = vec![0u8; 16];
    let attack = vec![0xFFu8; 16];
    let mut trials = Vec::new();
    for (quarantine, allocator) in [(false, "classic (LIFO reuse)"), (true, "quarantine")] {
        for (input, name) in [(&benign, "benign (zeros)"), (&attack, "attack (0xFF…)")] {
            let output = run_victim(quarantine, input);
            let compromised = output == "ADMIN";
            trials.push(UafTrial {
                allocator,
                input: name,
                output,
                compromised,
            });
        }
    }
    let unit = parse(VICTIM_UAF).expect("victim parses");
    let reference = interp::run(&unit, &[(0, attack)], 1_000_000);
    let source_verdict = match reference.outcome {
        InterpOutcome::Trap(v) => v.message,
        other => format!("{other:?}"),
    };
    UafReport {
        trials,
        source_verdict,
    }
}


/// E15 under the campaign API.
pub struct HeapUafExperiment;

impl crate::experiments::Experiment for HeapUafExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(15)
    }

    fn title(&self) -> &'static str {
        "Use-after-free and heap quarantine"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        vec![report.table()]
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    
    use super::compute as run;

    #[test]
    fn classic_allocator_is_exploitable() {
        let r = run();
        let attacked = r
            .trials
            .iter()
            .find(|t| t.allocator.starts_with("classic") && t.input.starts_with("attack"))
            .expect("row present");
        assert!(attacked.compromised, "{attacked:?}");
    }

    #[test]
    fn quarantine_blocks_the_reuse() {
        let r = run();
        for t in r.trials.iter().filter(|t| t.allocator == "quarantine") {
            assert!(!t.compromised, "{t:?}");
            assert_eq!(t.output, "USER");
        }
    }

    #[test]
    fn benign_input_on_classic_allocator_stays_user() {
        let r = run();
        let benign = r
            .trials
            .iter()
            .find(|t| t.allocator.starts_with("classic") && t.input.starts_with("benign"))
            .expect("row present");
        assert!(!benign.compromised);
    }

    #[test]
    fn the_source_semantics_trap_the_dangling_read() {
        let r = run();
        assert!(
            r.source_verdict.contains("temporal"),
            "{}",
            r.source_verdict
        );
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("quarantine"));
    }
}
