//! Experiment E14 (extension) — brute-forcing stack canaries against a
//! forking server.
//!
//! §III-C1 calls the canary "a (for the attacker) unpredictable
//! value". That unpredictability has a classic caveat the literature
//! added to the paper's story: servers that handle each request in a
//! *forked child* give every child the **same** canary as the parent.
//! A crash oracle (did the child die on the canary check?) then lets
//! the attacker recover the canary one byte at a time — at most
//! 4 × 256 attempts instead of 2³² — and then smash past it.
//!
//! The experiment runs the byte-by-byte attack against both server
//! models:
//!
//! * **forking** (same seed per attempt → same canary): canary
//!   recovered, smash succeeds;
//! * **re-executing** (fresh seed per attempt → fresh canary): the
//!   oracle tells the attacker nothing durable; recovery fails.

use swsec_defenses::DefenseConfig;
use swsec_vm::cpu::{Fault, RunOutcome};
use swsec_vm::isa::trap;

use crate::attacker::VICTIM_SMASH;
use crate::cache::ProgramCache;
use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::Experiment;
use crate::harness::{AttackTarget, ForkServer, ServeMode};
use crate::report::{ExperimentId, Report, Table};

/// Result of a byte-by-byte canary recovery campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleResult {
    /// Whether all four canary bytes were recovered.
    pub recovered: bool,
    /// The recovered value (meaningful only when `recovered`).
    pub canary: u32,
    /// Oracle queries spent.
    pub attempts: u32,
    /// Whether the follow-up smash with the recovered canary landed.
    pub smash_succeeded: bool,
}

const FILLER: usize = 52; // buf[48] + the x local, up to the canary slot
const ORACLE_FUEL: u64 = 1_000_000;

/// Runs the byte-by-byte recovery. `fork_semantics` keeps the canary
/// fixed across attempts (forking server); otherwise every attempt
/// sees a fresh canary (re-executed server). The victim compiles and
/// boots **once** through the [`ForkServer`]; every oracle query is a
/// snapshot restore under `mode` ([`ServeMode::Fork`]) or a machine
/// rebuild from the shared image ([`ServeMode::Rebuild`]) — the
/// results are byte-identical either way.
pub fn brute_force_canary_cached(
    cache: &ProgramCache,
    base_seed: u64,
    fork_semantics: bool,
    budget: u32,
    mode: ServeMode,
) -> OracleResult {
    let mut cfg = DefenseConfig::none();
    cfg.canary = true;
    let mut server = ForkServer::boot(cache, VICTIM_SMASH, cfg, base_seed)
        .expect("compiles")
        .with_fuel(ORACLE_FUEL)
        .with_mode(mode);
    let mut known: Vec<u8> = Vec::new();
    let mut attempts = 0u32;
    'bytes: for _pos in 0..4 {
        for guess in 0u16..=255 {
            if attempts >= budget {
                break 'bytes;
            }
            attempts += 1;
            let seed = if fork_semantics {
                base_seed
            } else {
                base_seed + u64::from(attempts)
            };
            let mut payload = vec![b'A'; FILLER];
            payload.extend_from_slice(&known);
            payload.push(guess as u8);
            let attempt = server.execute(seed, &payload).expect("attempt runs");
            let crashed_on_canary = matches!(
                attempt.outcome,
                RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::CANARY
            );
            if !crashed_on_canary {
                // The child survived the canary check: byte confirmed.
                known.push(guess as u8);
                continue 'bytes;
            }
        }
        // No byte survived: the oracle is useless (fresh canaries).
        break;
    }
    let recovered = known.len() == 4;
    let canary = if recovered {
        u32::from_le_bytes([known[0], known[1], known[2], known[3]])
    } else {
        0
    };

    // Stage 2: full smash with the recovered canary, diverting the
    // return into `grant` — one more child of the same server.
    let mut smash_succeeded = false;
    if recovered {
        let grant = server.program().function_addr("grant").expect("exists");
        let mut payload = vec![b'A'; FILLER];
        payload.extend_from_slice(&canary.to_le_bytes());
        payload.extend_from_slice(&0xbfff_0000u32.to_le_bytes()); // saved bp
        payload.extend_from_slice(&grant.to_le_bytes());
        let attempt = server.execute(base_seed, &payload).expect("attempt runs");
        smash_succeeded = attempt.emitted(1, b"SECRET");
    }
    OracleResult {
        recovered,
        canary,
        attempts,
        smash_succeeded,
    }
}

/// Full E14 results.
#[derive(Debug, Clone)]
pub struct CanaryOracleReport {
    /// Attack against the forking server.
    pub forking: OracleResult,
    /// Attack against the re-executing server.
    pub fresh: OracleResult,
    /// The actual canary of the forking server, for verification.
    pub actual_canary: u32,
}

impl CanaryOracleReport {
    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E14: byte-by-byte canary brute force via a crash oracle",
            &["server model", "canary recovered", "oracle queries", "smash"],
        );
        let mut push = |name: &str, r: OracleResult| {
            t.row(vec![
                name.to_string(),
                if r.recovered {
                    format!("yes ({:#010x})", r.canary)
                } else {
                    "no".to_string()
                },
                r.attempts.to_string(),
                if r.smash_succeeded {
                    "COMPROMISED"
                } else {
                    "blocked"
                }
                .to_string(),
            ]);
        };
        push("forking (canary survives fork)", self.forking);
        push("re-executing (fresh canary)", self.fresh);
        t
    }
}

/// How one server model renders in the E14 table.
fn oracle_row(name: &str, r: OracleResult) -> Vec<String> {
    vec![
        name.to_string(),
        if r.recovered {
            format!("yes ({:#010x})", r.canary)
        } else {
            "no".to_string()
        },
        r.attempts.to_string(),
        if r.smash_succeeded {
            "COMPROMISED"
        } else {
            "blocked"
        }
        .to_string(),
    ]
}

/// Runs the E14 experiment with an oracle budget per server model.
pub fn compute(seed: u64, budget: u32, cache: &ProgramCache, mode: ServeMode) -> CanaryOracleReport {
    let mut cfg = DefenseConfig::none();
    cfg.canary = true;
    let actual_canary = cache
        .launch(VICTIM_SMASH, cfg, seed)
        .expect("compiles")
        .canary_value
        .expect("canary installed");
    CanaryOracleReport {
        forking: brute_force_canary_cached(cache, seed, true, budget, mode),
        fresh: brute_force_canary_cached(cache, seed, false, budget, mode),
        actual_canary,
    }
}

/// E14 under the campaign API: one cell per server model, so the two
/// oracle campaigns run concurrently.
pub struct CanaryOracleExperiment;

impl Experiment for CanaryOracleExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::new(14)
    }

    fn title(&self) -> &'static str {
        "Byte-by-byte canary brute force"
    }

    fn cells(&self, _cfg: &CampaignConfig) -> usize {
        2
    }

    fn run_cell(&self, cfg: &CampaignConfig, ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        let fork_semantics = cell == 0;
        let result = brute_force_canary_cached(
            &ctx.cache,
            cfg.cell_seed(self.id(), cell),
            fork_semantics,
            cfg.oracle_budget,
            cfg.serve_mode(),
        );
        let name = if fork_semantics {
            "forking (canary survives fork)"
        } else {
            "re-executing (fresh canary)"
        };
        let mut carrier = Table::new("cell", &["model", "recovered", "queries", "smash"]);
        carrier.row(oracle_row(name, result));
        vec![carrier]
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        let mut t = Table::new(
            "E14: byte-by-byte canary brute force via a crash oracle",
            &["server model", "canary recovered", "oracle queries", "smash"],
        );
        for cell in &cells {
            t.rows.push(cell[0].rows[0].clone());
        }
        let mut report = Report::new(self.id(), self.title());
        report.tables.push(t);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64) -> CanaryOracleReport {
        compute(seed, 2048, &ProgramCache::new(), ServeMode::Fork)
    }

    #[test]
    fn fork_and_rebuild_oracles_agree_exactly() {
        let snap = compute(31, 2048, &ProgramCache::new(), ServeMode::Fork);
        let rebuilt = compute(31, 2048, &ProgramCache::new(), ServeMode::Rebuild);
        assert_eq!(snap.forking, rebuilt.forking);
        assert_eq!(snap.fresh, rebuilt.fresh);
        assert_eq!(snap.actual_canary, rebuilt.actual_canary);
    }

    #[test]
    fn oracle_compiles_its_victim_exactly_once() {
        let cache = ProgramCache::new();
        let r = brute_force_canary_cached(&cache, 31, true, 2048, ServeMode::Fork);
        assert!(r.recovered);
        let stats = cache.stats();
        // Hundreds of oracle queries, one compile: the fork server boots
        // off a single cached image and never goes back to the compiler.
        assert_eq!((stats.hits, stats.misses, stats.parses), (0, 1, 1));
    }

    #[test]
    fn forking_server_leaks_its_canary_byte_by_byte() {
        let r = run(31);
        assert!(r.forking.recovered);
        assert_eq!(r.forking.canary, r.actual_canary);
        // At most 4 × 256 queries, enormously less than 2^32.
        assert!(r.forking.attempts <= 1024, "{}", r.forking.attempts);
        assert!(r.forking.smash_succeeded);
    }

    #[test]
    fn fresh_canaries_defeat_the_oracle() {
        let r = run(31);
        // With per-attempt re-randomization the "survived" signal no
        // longer identifies a durable byte; full recovery of the
        // *current* canary must fail (astronomically unlikely to
        // succeed by chance).
        assert!(!r.fresh.smash_succeeded);
    }

    #[test]
    fn table_renders() {
        assert!(run(31).table().to_string().contains("forking"));
    }
}
