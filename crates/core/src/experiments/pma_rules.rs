//! Experiment E8 — Figure 3 / §IV-A: the protected-module memory
//! access-control rules, exhaustively.
//!
//! Enumerates every (where the IP is) × (what is accessed) combination
//! against the three rules the paper states, both at the policy level
//! and with real code running on the VM.

use swsec_pma::Platform;
use swsec_vm::cpu::{Fault, Machine, RunOutcome};
use swsec_vm::mem::Perm;
use swsec_vm::policy::{ProtectedRegion, ProtectionMap, ReentryPolicy, TransferKind};

use crate::report::Table;

/// One rule-check row.
#[derive(Debug, Clone)]
pub struct RuleCheck {
    /// Where the instruction pointer is.
    pub ip_location: &'static str,
    /// What is accessed.
    pub access: &'static str,
    /// Whether the model allows it.
    pub allowed: bool,
    /// Whether the paper's rules say it should be allowed.
    pub expected: bool,
}

/// Full E8 results.
#[derive(Debug, Clone)]
pub struct RulesReport {
    /// Policy-level rule grid.
    pub checks: Vec<RuleCheck>,
    /// End-to-end VM confirmations: (scenario, outcome description,
    /// matches expectation).
    pub vm_demos: Vec<(&'static str, String, bool)>,
}

impl RulesReport {
    /// Whether every check matched the paper's rules.
    pub fn all_match(&self) -> bool {
        self.checks.iter().all(|c| c.allowed == c.expected)
            && self.vm_demos.iter().all(|(_, _, ok)| *ok)
    }

    /// Renders the rule grid.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E8: protected-module access-control rules (§IV-A)",
            &["IP location", "access", "model", "paper"],
        );
        for c in &self.checks {
            let word = |b: bool| if b { "allow" } else { "deny" };
            t.row(vec![
                c.ip_location.to_string(),
                c.access.to_string(),
                word(c.allowed).to_string(),
                word(c.expected).to_string(),
            ]);
        }
        t
    }
}

const CODE: std::ops::Range<u32> = 0x0a00_0000..0x0a00_1000;
const DATA: std::ops::Range<u32> = 0x0a10_0000..0x0a10_1000;
const ENTRY: u32 = 0x0a00_0000;
const INSIDE_IP: u32 = 0x0a00_0400;
const OUTSIDE_IP: u32 = 0x0900_0000;

fn policy() -> ProtectionMap {
    ProtectionMap::new(vec![ProtectedRegion::new(CODE, DATA, vec![ENTRY])])
}

/// Runs the policy-level grid plus VM demonstrations.
pub fn compute() -> RulesReport {
    let map = policy();
    let mut checks = Vec::new();
    let mut check = |ip_location, access, allowed: bool, expected: bool| {
        checks.push(RuleCheck {
            ip_location,
            access,
            allowed,
            expected,
        });
    };

    // Rule 1: outside → module memory denied.
    check(
        "outside",
        "read module data",
        map.check_data(OUTSIDE_IP, DATA.start + 4).is_ok(),
        false,
    );
    check(
        "outside",
        "write module data",
        map.check_data(OUTSIDE_IP, DATA.start + 4).is_ok(),
        false,
    );
    check(
        "outside",
        "read module code",
        map.check_data(OUTSIDE_IP, CODE.start + 4).is_ok(),
        false,
    );
    // Rule 2: entry only via entry points.
    check(
        "outside",
        "call entry point",
        map.check_fetch(OUTSIDE_IP, ENTRY, TransferKind::Call).is_ok(),
        true,
    );
    check(
        "outside",
        "jump into code interior",
        map.check_fetch(OUTSIDE_IP, INSIDE_IP, TransferKind::Jump)
            .is_ok(),
        false,
    );
    check(
        "outside",
        "execute module data",
        map.check_fetch(OUTSIDE_IP, DATA.start, TransferKind::Jump)
            .is_ok(),
        false,
    );
    // Rule 3: inside → own memory allowed.
    check(
        "inside",
        "read module data",
        map.check_data(INSIDE_IP, DATA.start + 4).is_ok(),
        true,
    );
    check(
        "inside",
        "write module data",
        map.check_data(INSIDE_IP, DATA.start + 4).is_ok(),
        true,
    );
    check(
        "inside",
        "internal jump",
        map.check_fetch(INSIDE_IP, CODE.start + 0x10, TransferKind::Jump)
            .is_ok(),
        true,
    );
    check(
        "inside",
        "execute module data",
        map.check_fetch(INSIDE_IP, DATA.start, TransferKind::Jump)
            .is_ok(),
        false,
    );
    // Unprotected memory stays universally accessible.
    check(
        "outside",
        "read unprotected memory",
        map.check_data(OUTSIDE_IP, 0x0800_0000).is_ok(),
        true,
    );
    check(
        "inside",
        "read unprotected memory",
        map.check_data(INSIDE_IP, 0x0800_0000).is_ok(),
        true,
    );

    // End-to-end demos on the VM.
    let mut vm_demos = Vec::new();

    // Demo 1: outside code loads from module data → PMA fault.
    {
        let image = swsec_pma::ModuleImage::from_raw(
            vec![0x22; 64],
            666u32.to_le_bytes().to_vec(),
            CODE.start,
            DATA.start,
            vec![0],
        );
        let mut platform = Platform::new([1; 32]);
        let mut m = Machine::new();
        platform
            .load_module(&mut m, &image, ReentryPolicy::EntryPointsOnly)
            .expect("loads");
        let host = swsec_asm::assemble(&format!(
            ".org {OUTSIDE_IP:#x}\n\
             movi r1, {:#x}\n\
             load r0, [r1]\n\
             sys 0\n",
            DATA.start
        ))
        .expect("assembles");
        m.mem_mut().map(OUTSIDE_IP, 0x1000, Perm::RX).expect("maps");
        m.mem_mut().poke_bytes(OUTSIDE_IP, &host.bytes).expect("pokes");
        m.set_ip(OUTSIDE_IP);
        let outcome = m.run(100);
        let ok = matches!(outcome, RunOutcome::Fault(Fault::Pma(_)));
        vm_demos.push(("outside load of module data", outcome.to_string(), ok));
    }

    // Demo 2: call to the entry point succeeds and returns.
    {
        let image = swsec_pma::ModuleImage::from_raw(
            {
                // entry: movi r0, 7; ret
                let mut code = Vec::new();
                swsec_vm::isa::Instr::MovI { dst: swsec_vm::isa::Reg::R0, imm: 7 }
                    .encode(&mut code);
                swsec_vm::isa::Instr::Ret.encode(&mut code);
                code
            },
            vec![0; 4],
            CODE.start,
            DATA.start,
            vec![0],
        );
        let mut platform = Platform::new([1; 32]);
        let mut m = Machine::new();
        platform
            .load_module(&mut m, &image, ReentryPolicy::EntryPointsOnly)
            .expect("loads");
        let host = swsec_asm::assemble(&format!(
            ".org {OUTSIDE_IP:#x}\n\
             call {ENTRY:#x}\n\
             sys 0\n"
        ))
        .expect("assembles");
        m.mem_mut().map(OUTSIDE_IP, 0x1000, Perm::RX).expect("maps");
        m.mem_mut().poke_bytes(OUTSIDE_IP, &host.bytes).expect("pokes");
        m.mem_mut().map(0xbfff_0000, 0x1000, Perm::RW).expect("maps");
        m.set_reg(swsec_vm::isa::Reg::Sp, 0xbfff_0ff0);
        m.set_ip(OUTSIDE_IP);
        let outcome = m.run(100);
        let ok = outcome == RunOutcome::Halted(7);
        vm_demos.push(("call through the entry point", outcome.to_string(), ok));
    }

    // Demo 3: jump into the interior faults.
    {
        let image = swsec_pma::ModuleImage::from_raw(
            vec![0x00; 64],
            vec![0; 4],
            CODE.start,
            DATA.start,
            vec![0],
        );
        let mut platform = Platform::new([1; 32]);
        let mut m = Machine::new();
        platform
            .load_module(&mut m, &image, ReentryPolicy::EntryPointsOnly)
            .expect("loads");
        let host = swsec_asm::assemble(&format!(
            ".org {OUTSIDE_IP:#x}\n\
             jmp {:#x}\n",
            CODE.start + 8
        ))
        .expect("assembles");
        m.mem_mut().map(OUTSIDE_IP, 0x1000, Perm::RX).expect("maps");
        m.mem_mut().poke_bytes(OUTSIDE_IP, &host.bytes).expect("pokes");
        m.set_ip(OUTSIDE_IP);
        let outcome = m.run(100);
        let ok = matches!(outcome, RunOutcome::Fault(Fault::Pma(_)));
        vm_demos.push(("jump into code interior", outcome.to_string(), ok));
    }

    RulesReport { checks, vm_demos }
}


/// E8 under the campaign API.
pub struct PmaRulesExperiment;

impl crate::experiments::Experiment for PmaRulesExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(8)
    }

    fn title(&self) -> &'static str {
        "Figure 3: the access-control rules"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        vec![report.table()]
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    
    use super::compute as run;

    #[test]
    fn every_rule_matches_the_paper() {
        let r = run();
        assert!(r.all_match(), "{:#?}", r);
    }

    #[test]
    fn grid_covers_both_sides_of_each_rule() {
        let r = run();
        assert!(r.checks.len() >= 12);
        assert!(r.checks.iter().any(|c| c.expected));
        assert!(r.checks.iter().any(|c| !c.expected));
        assert_eq!(r.vm_demos.len(), 3);
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("entry point"));
    }
}
