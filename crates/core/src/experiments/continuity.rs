//! Experiment E11 — state continuity (§IV-C).
//!
//! The Figure 2 module's `tries_left` counter must survive restarts,
//! stored on attacker-controlled disk. This experiment mounts the
//! paper's rollback attack — replay the initial sealed state after
//! every two failed tries and brute-force the PIN — against the three
//! storage schemes, then injects crashes at every point of the save
//! protocol to measure liveness.

use swsec_pma::platform::ModuleKey;
use swsec_pma::{
    ContinuityError, CounterContinuity, CrashPoint, NaiveContinuity, Platform,
    TwoPhaseContinuity, UntrustedStore,
};

use crate::report::Table;

/// A pure-Rust model of the Figure 2 module logic, used as the
/// stateful payload of the continuity schemes. (The in-VM version of
/// the module is exercised by E7/E9; continuity is a platform-level
/// protocol, so the module logic itself can be modelled directly —
/// the protocol neither knows nor cares what the state bytes mean.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinVault {
    /// Remaining tries.
    pub tries_left: u32,
    /// The PIN.
    pub pin: u32,
    /// The protected secret.
    pub secret: u32,
}

impl PinVault {
    /// A fresh vault.
    pub fn new(pin: u32) -> PinVault {
        PinVault {
            tries_left: 3,
            pin,
            secret: 666,
        }
    }

    /// One `get_secret` call: Figure 2 logic.
    pub fn guess(&mut self, pin: u32) -> u32 {
        if self.tries_left > 0 {
            if self.pin == pin {
                self.tries_left = 3;
                self.secret
            } else {
                self.tries_left -= 1;
                0
            }
        } else {
            0
        }
    }

    /// Serializes to the sealed-state byte format.
    pub fn to_bytes(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&self.tries_left.to_le_bytes());
        out.extend_from_slice(&self.pin.to_le_bytes());
        out.extend_from_slice(&self.secret.to_le_bytes());
        out
    }

    /// Deserializes from the sealed-state byte format.
    pub fn from_bytes(bytes: &[u8]) -> Option<PinVault> {
        if bytes.len() != 12 {
            return None;
        }
        let word = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("bounds"));
        Some(PinVault {
            tries_left: word(0),
            pin: word(4),
            secret: word(8),
        })
    }
}

/// Which storage scheme guards the vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Sealing only.
    Naive,
    /// Monotonic counter, bump-then-write.
    Counter,
    /// Two-slot write-ahead, write-then-bump.
    TwoPhase,
}

impl Scheme {
    /// All schemes.
    pub const ALL: [Scheme; 3] = [Scheme::Naive, Scheme::Counter, Scheme::TwoPhase];

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Naive => "naive sealing",
            Scheme::Counter => "monotonic counter",
            Scheme::TwoPhase => "two-phase (write-ahead)",
        }
    }
}

/// Result of a rollback brute-force campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackResult {
    /// Whether the PIN was recovered.
    pub found: bool,
    /// Total guesses issued.
    pub guesses: u32,
    /// Whether a stale-state rejection stopped the campaign.
    pub rejected: bool,
}

enum AnyScheme {
    Naive(NaiveContinuity),
    Counter(CounterContinuity),
    TwoPhase(TwoPhaseContinuity),
}

impl AnyScheme {
    fn save(&mut self, platform: &mut Platform, store: &mut UntrustedStore, state: &[u8]) -> bool {
        match self {
            AnyScheme::Naive(s) => {
                s.save(store, state);
                true
            }
            AnyScheme::Counter(s) => s.save(platform, store, state, CrashPoint::None),
            AnyScheme::TwoPhase(s) => s.save(platform, store, state, CrashPoint::None),
        }
    }

    fn load(
        &mut self,
        platform: &mut Platform,
        store: &UntrustedStore,
    ) -> Result<Vec<u8>, ContinuityError> {
        match self {
            AnyScheme::Naive(s) => s.load(store),
            AnyScheme::Counter(s) => s.load(platform, store),
            AnyScheme::TwoPhase(s) => s.load(platform, store),
        }
    }
}

fn make_scheme(scheme: Scheme, key: ModuleKey, platform: &mut Platform) -> AnyScheme {
    match scheme {
        Scheme::Naive => AnyScheme::Naive(NaiveContinuity::new(key, 0)),
        Scheme::Counter => {
            let c = platform.alloc_counter();
            AnyScheme::Counter(CounterContinuity::new(key, c, 0))
        }
        Scheme::TwoPhase => {
            let c = platform.alloc_counter();
            AnyScheme::TwoPhase(TwoPhaseContinuity::new(key, c, 0, 1))
        }
    }
}

/// Mounts the rollback brute force: the attacker snapshots the freshly
/// initialized store, then replays it whenever the lockout approaches,
/// trying every PIN in `0..space`.
pub fn rollback_brute_force(scheme: Scheme, pin: u32, space: u32) -> RollbackResult {
    let mut platform = Platform::new([0x31; 32]);
    let key = ModuleKey([0x99; 32]);
    let mut store = UntrustedStore::new();
    let mut module = make_scheme(scheme, key, &mut platform);

    // Module initializes and seals its fresh state.
    let vault = PinVault::new(pin);
    assert!(module.save(&mut platform, &mut store, &vault.to_bytes()));
    let fresh_snapshot = store.snapshot(); // attacker keeps this

    let mut guesses = 0u32;
    for candidate in 0..space {
        // Each "epoch": the attacker rolls storage back to the fresh
        // snapshot, restarts the module, and burns one guess.
        store.restore(fresh_snapshot.clone());
        let state = match module.load(&mut platform, &store) {
            Ok(bytes) => bytes,
            Err(_) => {
                // Stale state rejected: the rollback is dead.
                return RollbackResult {
                    found: false,
                    guesses,
                    rejected: true,
                };
            }
        };
        let mut vault = PinVault::from_bytes(&state).expect("well-formed state");
        guesses += 1;
        let result = vault.guess(candidate);
        if result != 0 {
            return RollbackResult {
                found: true,
                guesses,
                rejected: false,
            };
        }
        // Module seals the decremented state back (which the attacker
        // will promptly discard).
        assert!(module.save(&mut platform, &mut store, &vault.to_bytes()));
    }
    RollbackResult {
        found: false,
        guesses,
        rejected: false,
    }
}

/// Result of crash-recovery (liveness) probing for one scheme.
#[derive(Debug, Clone)]
pub struct LivenessResult {
    /// (crash point, recovered?, recovered state is old or new).
    pub outcomes: Vec<(CrashPoint, bool, String)>,
}

/// Injects a crash at each protocol point during a save of `v2` (over
/// an existing `v1`) and attempts recovery.
pub fn liveness(scheme: Scheme) -> LivenessResult {
    let mut outcomes = Vec::new();
    let points: &[CrashPoint] = match scheme {
        Scheme::Naive => &[CrashPoint::BeforeStore],
        Scheme::Counter => &[CrashPoint::BeforeStore, CrashPoint::AfterBump],
        Scheme::TwoPhase => &[CrashPoint::BeforeStore, CrashPoint::AfterStore],
    };
    for &point in points {
        let mut platform = Platform::new([0x32; 32]);
        let key = ModuleKey([0x98; 32]);
        let mut store = UntrustedStore::new();
        let v1 = PinVault::new(7).to_bytes();
        let mut v2vault = PinVault::new(7);
        v2vault.tries_left = 1;
        let v2 = v2vault.to_bytes();
        let recovered = match make_scheme(scheme, key, &mut platform) {
            AnyScheme::Naive(mut s) => {
                s.save(&mut store, &v1);
                if point == CrashPoint::None {
                    s.save(&mut store, &v2);
                }
                s.load(&store).ok()
            }
            AnyScheme::Counter(mut s) => {
                assert!(s.save(&mut platform, &mut store, &v1, CrashPoint::None));
                let _completed = s.save(&mut platform, &mut store, &v2, point);
                s.load(&platform, &store).ok()
            }
            AnyScheme::TwoPhase(mut s) => {
                assert!(s.save(&mut platform, &mut store, &v1, CrashPoint::None));
                let _completed = s.save(&mut platform, &mut store, &v2, point);
                s.load(&mut platform, &store).ok()
            }
        };
        let description = match &recovered {
            None => "BRICKED".to_string(),
            Some(bytes) if *bytes == v1 => "recovered old state".to_string(),
            Some(bytes) if *bytes == v2 => "recovered new state".to_string(),
            Some(_) => "recovered unknown state".to_string(),
        };
        outcomes.push((point, recovered.is_some(), description));
    }
    LivenessResult { outcomes }
}

/// One row of the E11c tamper-classification probe.
#[derive(Debug, Clone)]
pub struct TamperResult {
    /// What the attacker did to storage.
    pub action: &'static str,
    /// How `load` classified it.
    pub verdict: String,
}

/// Probes how the two-phase scheme classifies storage tampering.
///
/// Corruption must be distinguishable from rollback — they are
/// different attacks (and the benign disk fault is a third cause), so
/// an operator reacting to the error needs the right one. This guards
/// the regression where corrupt blobs were reported as
/// `Stale { found: 0 }`, indistinguishable from deleted storage.
pub fn tamper_classification() -> Vec<TamperResult> {
    let setup = || {
        let mut platform = Platform::new([0x33; 32]);
        let key = ModuleKey([0x97; 32]);
        let c = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, c, 0, 1);
        let mut store = UntrustedStore::new();
        // Two completed saves: sequence 2 (current) sits in slot 0,
        // sequence 1 (stale) in slot 1.
        assert!(scheme.save(&mut platform, &mut store, b"v1", CrashPoint::None));
        assert!(scheme.save(&mut platform, &mut store, b"v2", CrashPoint::None));
        (platform, scheme, store)
    };
    let verdict = |r: Result<Vec<u8>, ContinuityError>| match r {
        Ok(state) => {
            assert_eq!(state, b"v2");
            "recovered current state".to_string()
        }
        Err(e) => format!("rejected: {e}"),
    };
    let probe = |action, slots: &[u32]| {
        let (mut platform, scheme, mut store) = setup();
        for &slot in slots {
            if slot == u32::MAX {
                store.restore(UntrustedStore::new());
            } else {
                assert!(store.flip_bit(slot, 17, 2).is_some());
            }
        }
        TamperResult {
            action,
            verdict: verdict(scheme.load(&mut platform, &store)),
        }
    };
    vec![
        probe("none", &[]),
        probe("bit flip in stale blob (slot B)", &[1]),
        probe("bit flip in current blob (slot A)", &[0]),
        probe("bit flips in both blobs", &[0, 1]),
        probe("storage deleted", &[u32::MAX]),
    ]
}

/// Full E11 results.
#[derive(Debug, Clone)]
pub struct ContinuityReport {
    /// Rollback brute force per scheme.
    pub rollback: Vec<(Scheme, RollbackResult)>,
    /// Liveness per scheme.
    pub liveness: Vec<(Scheme, LivenessResult)>,
    /// Tamper classification of the two-phase scheme.
    pub tamper: Vec<TamperResult>,
}

impl ContinuityReport {
    /// Renders the report.
    pub fn tables(&self) -> Vec<Table> {
        let mut rb = Table::new(
            "E11a: rollback brute force against the PIN vault",
            &["scheme", "PIN recovered", "guesses", "stopped by freshness"],
        );
        for (s, r) in &self.rollback {
            rb.row(vec![
                s.label().to_string(),
                r.found.to_string(),
                r.guesses.to_string(),
                r.rejected.to_string(),
            ]);
        }
        let mut lv = Table::new(
            "E11b: crash injection during save (liveness)",
            &["scheme", "crash point", "recovery"],
        );
        for (s, l) in &self.liveness {
            for (point, _, desc) in &l.outcomes {
                lv.row(vec![
                    s.label().to_string(),
                    format!("{point:?}"),
                    desc.clone(),
                ]);
            }
        }
        let mut tp = Table::new(
            "E11c: tamper classification (two-phase scheme)",
            &["storage tampering", "load verdict"],
        );
        for t in &self.tamper {
            tp.row(vec![t.action.to_string(), t.verdict.clone()]);
        }
        vec![rb, lv, tp]
    }
}

/// Runs the E11 experiment.
pub fn compute() -> ContinuityReport {
    let pin = 73;
    let space = 100;
    let rollback = Scheme::ALL
        .iter()
        .map(|&s| (s, rollback_brute_force(s, pin, space)))
        .collect();
    let liveness = Scheme::ALL.iter().map(|&s| (s, liveness(s))).collect();
    ContinuityReport {
        rollback,
        liveness,
        tamper: tamper_classification(),
    }
}


/// E11 under the campaign API.
pub struct ContinuityExperiment;

impl crate::experiments::Experiment for ContinuityExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(11)
    }

    fn title(&self) -> &'static str {
        "State continuity and rollback"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        report.tables()
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::compute as run;

    #[test]
    fn vault_roundtrips() {
        let v = PinVault::new(1234);
        assert_eq!(PinVault::from_bytes(&v.to_bytes()), Some(v));
        assert_eq!(PinVault::from_bytes(&[0; 3]), None);
    }

    #[test]
    fn vault_lockout_logic_matches_figure2() {
        let mut v = PinVault::new(1234);
        assert_eq!(v.guess(1), 0);
        assert_eq!(v.guess(2), 0);
        assert_eq!(v.guess(3), 0);
        assert_eq!(v.guess(1234), 0, "locked out");
        let mut v2 = PinVault::new(1234);
        assert_eq!(v2.guess(1234), 666);
        assert_eq!(v2.tries_left, 3);
    }

    #[test]
    fn rollback_breaks_naive_sealing() {
        let r = rollback_brute_force(Scheme::Naive, 73, 100);
        assert!(r.found);
        assert_eq!(r.guesses, 74);
    }

    #[test]
    fn counters_stop_the_rollback() {
        for scheme in [Scheme::Counter, Scheme::TwoPhase] {
            let r = rollback_brute_force(scheme, 73, 100);
            assert!(!r.found, "{scheme:?}");
            assert!(r.rejected, "{scheme:?}");
            // The very first "replay" restores a store identical to the
            // live one, so it still loads; every later replay is stale.
            // The attacker gets at most one guess out of the rollback.
            assert!(r.guesses <= 1, "{scheme:?}: {}", r.guesses);
        }
    }

    #[test]
    fn counter_scheme_bricks_on_crash_after_bump() {
        let l = liveness(Scheme::Counter);
        let after_bump = l
            .outcomes
            .iter()
            .find(|(p, _, _)| *p == CrashPoint::AfterBump)
            .expect("probed");
        assert!(!after_bump.1, "counter scheme must brick: {:?}", after_bump);
    }

    #[test]
    fn two_phase_recovers_from_every_crash_point() {
        let l = liveness(Scheme::TwoPhase);
        for (point, recovered, desc) in &l.outcomes {
            assert!(recovered, "two-phase bricked at {point:?}: {desc}");
            assert!(
                desc.contains("old") || desc.contains("new"),
                "atomicity violated at {point:?}: {desc}"
            );
        }
    }

    #[test]
    fn report_tables_render() {
        let tables = run().tables();
        assert_eq!(tables.len(), 3);
        assert!(tables[0].to_string().contains("naive sealing"));
        assert!(tables[1].to_string().contains("BRICKED"));
        assert!(tables[2].to_string().contains("tamper"));
    }

    #[test]
    fn tampering_is_classified_not_conflated_with_rollback() {
        let rows = tamper_classification();
        let verdict = |action: &str| {
            &rows
                .iter()
                .find(|r| r.action == action)
                .unwrap_or_else(|| panic!("no probe {action:?}"))
                .verdict
        };
        assert_eq!(verdict("none"), "recovered current state");
        // Losing only the stale blob costs nothing.
        assert_eq!(
            verdict("bit flip in stale blob (slot B)"),
            "recovered current state"
        );
        // Losing the current blob leaves a genuinely stale survivor.
        assert!(verdict("bit flip in current blob (slot A)").contains("stale"));
        // All-blob tampering is corruption, not rollback…
        assert!(verdict("bit flips in both blobs").contains("authentication"));
        // …while deletion is (freshness-wise) a rollback to nothing.
        assert!(verdict("storage deleted").contains("stale"));
    }
}
