//! The experiment drivers: one module per figure/table of the
//! reproduction (see `DESIGN.md` §5 for the index).
//!
//! | module | experiment |
//! |---|---|
//! | [`fig1`] | E1 — Figure 1: source/machine-code/run-time state |
//! | [`catalogue`] | E2 — vulnerability & attack catalogue |
//! | [`matrix`] | E3 — attack × countermeasure matrix |
//! | [`aslr`] | E4 — ASLR brute-force sweep |
//! | [`overhead`] | E5 — countermeasure instruction overhead |
//! | [`analysis`] | E6 — static analysis & run-time checking |
//! | [`scraping`] | E7 — Figure 2: memory scraping vs PMA |
//! | [`pma_rules`] | E8 — Figure 3: the access-control rules |
//! | [`fig4`] | E9 — Figure 4: secure compilation |
//! | [`attest`] | E10 — remote attestation |
//! | [`continuity`] | E11 — state continuity & rollback |
//! | [`pma_cost`] | E12 — isolation cost |
//! | [`strict_reentry`] | E13 — strict-policy secure compilation |
//! | [`canary_oracle`] | E14 — byte-by-byte canary brute force |
//! | [`heap_uaf`] | E15 — use-after-free and heap quarantine |
//! | [`crash_matrix`] | E16 — crash/fault matrix vs state continuity |

use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::report::{ExperimentId, Report, Table};

/// The uniform interface every experiment driver implements.
///
/// An experiment decomposes into `cells()` independent units of work;
/// [`run_cell`](Experiment::run_cell) executes one — depending only on
/// the configuration, the shared context and the cell index, never on
/// execution order — and [`assemble`](Experiment::assemble) folds the
/// outputs (in cell order) into the final [`Report`]. Single-shot
/// experiments have one cell; grids like the E3 matrix expose one cell
/// per grid point so the campaign runner can spread them across
/// workers.
///
/// Cell outputs travel as `Vec<Table>`: either the finished tables
/// (single-cell experiments) or small carrier tables `assemble`
/// pivots into the final shape.
pub trait Experiment: Sync {
    /// Which experiment this is.
    fn id(&self) -> ExperimentId;

    /// Human-readable title, used as the report heading.
    fn title(&self) -> &'static str;

    /// Number of independent cells under `cfg` (at least 1).
    fn cells(&self, _cfg: &CampaignConfig) -> usize {
        1
    }

    /// Runs cell `cell`. Must be a pure function of
    /// `(cfg, cell)` plus the derived seed
    /// [`CampaignConfig::cell_seed`]`(self.id(), cell)`.
    fn run_cell(&self, cfg: &CampaignConfig, ctx: &CampaignCtx, cell: usize) -> Vec<Table>;

    /// Folds the cell outputs (cell order) into the report.
    fn assemble(&self, cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report;

    /// Runs the whole experiment sequentially: the uniform entry point
    /// for callers that do not need the campaign pool.
    fn run(&self, cfg: &CampaignConfig) -> Report {
        self.run_with(cfg, &CampaignCtx::new())
    }

    /// Like [`run`](Experiment::run), sharing the caller's context
    /// (and hence compile cache).
    fn run_with(&self, cfg: &CampaignConfig, ctx: &CampaignCtx) -> Report {
        let cells = (0..self.cells(cfg))
            .map(|cell| self.run_cell(cfg, ctx, cell))
            .collect();
        self.assemble(cfg, cells)
    }
}

/// Every experiment, in presentation order E1–E16.
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 16] = [
        &fig1::Fig1Experiment,
        &catalogue::CatalogueExperiment,
        &matrix::MatrixExperiment,
        &aslr::AslrExperiment,
        &overhead::OverheadExperiment,
        &analysis::AnalysisExperiment,
        &scraping::ScrapingExperiment,
        &pma_rules::PmaRulesExperiment,
        &fig4::Fig4Experiment,
        &attest::AttestExperiment,
        &continuity::ContinuityExperiment,
        &pma_cost::PmaCostExperiment,
        &strict_reentry::StrictReentryExperiment,
        &canary_oracle::CanaryOracleExperiment,
        &heap_uaf::HeapUafExperiment,
        &crash_matrix::CrashMatrixExperiment,
    ];
    &REGISTRY
}

/// Shorthand: wraps already-final tables from a single-cell experiment
/// into its report.
fn single_cell_report(
    id: ExperimentId,
    title: &str,
    mut cells: Vec<Vec<Table>>,
) -> Report {
    let mut report = Report::new(id, title);
    report.tables = cells.swap_remove(0);
    report
}

pub mod analysis;
pub mod aslr;
pub mod attest;
pub mod canary_oracle;
pub mod catalogue;
pub mod continuity;
pub mod crash_matrix;
pub mod fig1;
pub mod heap_uaf;
pub mod fig4;
pub mod matrix;
pub mod overhead;
pub mod pma_cost;
pub mod pma_rules;
pub mod scraping;
pub mod strict_reentry;
