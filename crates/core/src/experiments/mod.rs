//! The experiment drivers: one module per figure/table of the
//! reproduction (see `DESIGN.md` §5 for the index).
//!
//! | module | experiment |
//! |---|---|
//! | [`fig1`] | E1 — Figure 1: source/machine-code/run-time state |
//! | [`catalogue`] | E2 — vulnerability & attack catalogue |
//! | [`matrix`] | E3 — attack × countermeasure matrix |
//! | [`aslr`] | E4 — ASLR brute-force sweep |
//! | [`overhead`] | E5 — countermeasure instruction overhead |
//! | [`analysis`] | E6 — static analysis & run-time checking |
//! | [`scraping`] | E7 — Figure 2: memory scraping vs PMA |
//! | [`pma_rules`] | E8 — Figure 3: the access-control rules |
//! | [`fig4`] | E9 — Figure 4: secure compilation |
//! | [`attest`] | E10 — remote attestation |
//! | [`continuity`] | E11 — state continuity & rollback |
//! | [`pma_cost`] | E12 — isolation cost |
//! | [`strict_reentry`] | E13 — strict-policy secure compilation |
//! | [`canary_oracle`] | E14 — byte-by-byte canary brute force |
//! | [`heap_uaf`] | E15 — use-after-free and heap quarantine |

pub mod analysis;
pub mod aslr;
pub mod attest;
pub mod canary_oracle;
pub mod catalogue;
pub mod continuity;
pub mod fig1;
pub mod heap_uaf;
pub mod fig4;
pub mod matrix;
pub mod overhead;
pub mod pma_cost;
pub mod pma_rules;
pub mod scraping;
pub mod strict_reentry;
