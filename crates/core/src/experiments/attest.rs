//! Experiment E10 — remote attestation (§IV-C).
//!
//! The OS may tamper with a module before loading it. The platform
//! derives the module's key from a hash of the code it *actually*
//! loaded, so a tampered module holds the wrong key and cannot answer
//! the verifier's challenge.

use swsec_pma::platform::Measurement;
use swsec_pma::{attest, Platform, Verifier};

use crate::experiments::scraping::secret_module_image;
use crate::report::Table;

/// One attestation trial.
#[derive(Debug, Clone)]
pub struct AttestTrial {
    /// Scenario description.
    pub scenario: &'static str,
    /// Whether the verifier accepted.
    pub accepted: bool,
    /// Whether the paper's scheme says it should accept.
    pub expected: bool,
}

/// Full E10 results.
#[derive(Debug, Clone)]
pub struct AttestReport {
    /// The trials.
    pub trials: Vec<AttestTrial>,
}

impl AttestReport {
    /// Whether every trial matched expectations.
    pub fn all_match(&self) -> bool {
        self.trials.iter().all(|t| t.accepted == t.expected)
    }

    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E10: remote attestation of the secret module",
            &["scenario", "verifier", "expected"],
        );
        for trial in &self.trials {
            let word = |b: bool| if b { "ACCEPT" } else { "reject" };
            t.row(vec![
                trial.scenario.to_string(),
                word(trial.accepted).to_string(),
                word(trial.expected).to_string(),
            ]);
        }
        t
    }
}

/// Runs the E10 experiment.
pub fn compute() -> AttestReport {
    let image = secret_module_image();
    let platform = Platform::new([0x77; 32]);
    let expected_measurement = Measurement::of(&image);
    let expected_key = platform.derive_key(expected_measurement);

    let mut trials = Vec::new();

    // Honest load: the platform derives the provisioned key.
    {
        let mut verifier = Verifier::new(expected_measurement, expected_key);
        let nonce = verifier.challenge(1);
        let key = platform.derive_key(Measurement::of(&image));
        let report = attest(&key, nonce, b"session-key-commitment");
        trials.push(AttestTrial {
            scenario: "honest module, honest platform",
            accepted: verifier.verify(nonce, &report),
            expected: true,
        });
    }

    // OS flips one bit of the module before loading.
    {
        let mut tampered = image.clone();
        tampered.tamper_code_bit(17, 3);
        let mut verifier = Verifier::new(expected_measurement, expected_key);
        let nonce = verifier.challenge(2);
        let key = platform.derive_key(Measurement::of(&tampered));
        let report = attest(&key, nonce, b"");
        trials.push(AttestTrial {
            scenario: "OS-tampered module (1 bit flipped)",
            accepted: verifier.verify(nonce, &report),
            expected: false,
        });
    }

    // The module runs on a different (attacker-controlled) platform.
    {
        let rogue = Platform::new([0x78; 32]);
        let mut verifier = Verifier::new(expected_measurement, expected_key);
        let nonce = verifier.challenge(3);
        let key = rogue.derive_key(Measurement::of(&image));
        let report = attest(&key, nonce, b"");
        trials.push(AttestTrial {
            scenario: "honest module on a rogue platform",
            accepted: verifier.verify(nonce, &report),
            expected: false,
        });
    }

    // Replay of an old accepted report.
    {
        let mut verifier = Verifier::new(expected_measurement, expected_key);
        let nonce = verifier.challenge(4);
        let key = platform.derive_key(Measurement::of(&image));
        let report = attest(&key, nonce, b"");
        let first = verifier.verify(nonce, &report);
        let replay = verifier.verify(nonce, &report);
        trials.push(AttestTrial {
            scenario: "fresh report",
            accepted: first,
            expected: true,
        });
        trials.push(AttestTrial {
            scenario: "replayed report (same nonce)",
            accepted: replay,
            expected: false,
        });
    }

    AttestReport { trials }
}


/// E10 under the campaign API.
pub struct AttestExperiment;

impl crate::experiments::Experiment for AttestExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(10)
    }

    fn title(&self) -> &'static str {
        "Remote attestation"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        vec![report.table()]
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    
    use super::compute as run;

    #[test]
    fn all_attestation_outcomes_match_the_paper() {
        let r = run();
        assert!(r.all_match(), "{:#?}", r.trials);
        assert_eq!(r.trials.len(), 5);
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("tampered"));
    }
}
