//! Experiment E1 — Figure 1: source code, machine code and run-time
//! machine state.
//!
//! Compiles the paper's example server and reproduces the figure's
//! three panels: (a) the source, (b) the machine-code listing of
//! `process()`, and (c) a snapshot of the run-time state taken at the
//! moment execution enters `get_request()` — activation records, saved
//! base pointers, the saved return address, and the little-endian
//! buffer contents.

use swsec_defenses::DefenseConfig;
use swsec_vm::cpu::StepResult;

use crate::cache::ProgramCache;
use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::{single_cell_report, Experiment};
use crate::loader;
use crate::report::{text_panel, ExperimentId, Report, Table};

/// The paper's Figure 1(a) source, verbatim in MinC.
pub const FIG1_SOURCE: &str = "\
void get_request(int fd, char buf[]) {\n\
    read(fd, buf, 16);\n\
}\n\
void process(int fd) {\n\
    char buf[16];\n\
    get_request(fd, buf);\n\
}\n\
void main() {\n\
    int fd = 1;\n\
    process(fd);\n\
}\n";

/// The reproduced figure.
#[derive(Debug, Clone)]
pub struct Fig1Report {
    /// Panel (a): the source code.
    pub source: String,
    /// Panel (b): machine code of `process()` with hex bytes, in the
    /// style of the figure.
    pub listing: String,
    /// Panel (c): the run-time stack snapshot at entry to
    /// `get_request()`.
    pub snapshot: Table,
    /// Verified layout facts (used by the tests).
    pub facts: Fig1Facts,
}

/// Machine-checkable facts extracted from the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig1Facts {
    /// Address of `process`'s `buf`.
    pub buf_addr: u32,
    /// Address of the saved return address in `process`'s frame.
    pub ret_slot: u32,
    /// Value stored in that slot (points into `main`).
    pub ret_value: u32,
    /// Address of `process`'s saved base pointer slot.
    pub saved_bp_slot: u32,
    /// `buf` content word 0, demonstrating little-endian storage.
    pub buf_word0: u32,
}

/// Compiles and runs the Figure 1 program, stopping at the entry of
/// `get_request()` to photograph the machine state. The program runs
/// undefended, so every seed photographs the same state.
///
/// # Panics
///
/// Panics only if the built-in program fails to compile — a bug, not an
/// input condition.
pub fn compute(cache: &ProgramCache, seed: u64) -> Fig1Report {
    let mut session =
        cache.launch(FIG1_SOURCE, DefenseConfig::none(), seed).expect("figure 1 compiles");
    // The figure's buffer holds "ABCDEFGHIJKLMNO\0"; feed it on fd 1 (the
    // figure passes fd = 1).
    session.machine.io_mut().feed_input(1, b"ABCDEFGHIJKLMNO\0");

    let get_request = session.program.function_addr("get_request").expect("exists");
    // Step to the moment the machine has just entered get_request().
    let mut entered = false;
    for _ in 0..1_000_000 {
        if session.machine.ip() == get_request {
            entered = true;
            break;
        }
        match session.machine.step() {
            StepResult::Continue => {}
            other => panic!("figure 1 run stopped early: {other:?}"),
        }
    }
    assert!(entered, "execution never reached get_request");

    // Let get_request run its prologue and the read() so the buffer is
    // filled, then stop before it returns.
    let process_frame = &session.program.frames["process"];
    let bp_process = loader::frame_base_for(&session.program, &[("main", 0), ("process", 1)])
        .expect("frame arithmetic");
    let buf_off = process_frame
        .locals
        .iter()
        .find(|(n, _)| n == "buf")
        .map(|(_, s)| s.offset)
        .expect("buf exists");
    let buf_addr = bp_process.wrapping_add(buf_off as u32);
    for _ in 0..1_000_000 {
        // Run until the read finished (buffer non-zero) or get_request
        // is about to return.
        if session.machine.mem().peek_u32(buf_addr).unwrap_or(0) != 0 {
            break;
        }
        match session.machine.step() {
            StepResult::Continue => {}
            other => panic!("figure 1 run stopped early: {other:?}"),
        }
    }

    let mem = session.machine.mem();
    let word = |addr: u32| mem.peek_u32(addr).expect("stack mapped");
    let ret_slot = bp_process.wrapping_add(4);
    let saved_bp_slot = bp_process;

    let mut snapshot = Table::new(
        "Figure 1(c): run-time machine state at entry of get_request()",
        &["address", "contents", "annotation"],
    );
    let annotate = |addr: u32| -> String {
        if addr == ret_slot {
            "saved return address (into main)".into()
        } else if addr == saved_bp_slot {
            "saved base pointer (main's frame)".into()
        } else if addr >= buf_addr && addr < buf_addr + 16 {
            format!("buf[{}..{}]", addr - buf_addr, addr - buf_addr + 4)
        } else if addr == buf_addr.wrapping_sub(8) {
            "fd parameter for get_request".into()
        } else if addr == buf_addr.wrapping_sub(4) {
            "buf parameter for get_request".into()
        } else {
            String::new()
        }
    };
    let top = ret_slot.wrapping_add(8);
    let bottom = buf_addr.wrapping_sub(24);
    let mut addr = top;
    while addr >= bottom {
        snapshot.row(vec![
            format!("{addr:#010x}"),
            format!("{:#010x}", word(addr)),
            annotate(addr),
        ]);
        addr = addr.wrapping_sub(4);
    }

    // Panel (b): the listing of process(), in the paper's hex+mnemonic
    // style.
    let process_addr = session.program.function_addr("process").expect("exists");
    let next_fn = session
        .program
        .functions
        .values()
        .copied()
        .filter(|&a| a > process_addr)
        .min()
        .unwrap_or(session.program.text_end());
    let start = (process_addr - session.program.text_base) as usize;
    let end = (next_fn - session.program.text_base) as usize;
    let listing = swsec_asm::format_listing(&session.program.text[start..end], process_addr);

    let facts = Fig1Facts {
        buf_addr,
        ret_slot,
        ret_value: word(ret_slot),
        saved_bp_slot,
        buf_word0: word(buf_addr),
    };
    Fig1Report {
        source: FIG1_SOURCE.to_string(),
        listing,
        snapshot,
        facts,
    }
}

/// E1 under the campaign API.
pub struct Fig1Experiment;

impl Experiment for Fig1Experiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::new(1)
    }

    fn title(&self) -> &'static str {
        "Figure 1: source, machine code and run-time state"
    }

    fn run_cell(&self, cfg: &CampaignConfig, ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        let r = compute(&ctx.cache, cfg.cell_seed(self.id(), cell));
        vec![
            text_panel("Figure 1(a): source code", &r.source),
            text_panel("Figure 1(b): machine code of process()", &r.listing),
            r.snapshot,
        ]
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> Fig1Report {
        compute(&ProgramCache::new(), 1)
    }

    #[test]
    fn snapshot_matches_paper_layout() {
        let report = run();
        let f = report.facts;
        // The saved return address sits 4 bytes above the saved bp, which
        // sits 16 bytes above buf — exactly Figure 1(c).
        assert_eq!(f.saved_bp_slot, f.buf_addr + 16);
        assert_eq!(f.ret_slot, f.saved_bp_slot + 4);
        // "ABCD" stored little-endian: 0x44434241.
        assert_eq!(f.buf_word0, 0x4443_4241);
    }

    #[test]
    fn return_address_points_into_main() {
        let report = run();
        // The saved return address must be a text address (inside main).
        assert!(report.facts.ret_value >= 0x0804_8000);
        assert!(report.listing.contains("enter 0x10"));
    }

    #[test]
    fn snapshot_table_renders() {
        let report = run();
        let text = report.snapshot.to_string();
        assert!(text.contains("saved return address"));
        assert!(text.contains("buf[0..4]"));
    }
}
