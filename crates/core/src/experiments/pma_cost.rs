//! Experiment E12 — the cost of protected-module isolation (§IV-A).
//!
//! The access-control checks of a PMA are performed by the hardware on
//! every access; in this reproduction they are performed by the VM on
//! every step, so the *guest* instruction count is unchanged while the
//! *host* pays per-access checking cost (measured by the Criterion
//! bench `pma_cost`). What compiled code does pay for is §IV-B secure
//! compilation: the defensive function-pointer check and the register
//! scrub add instructions on every cross-boundary call. This driver
//! measures those guest-visible costs.

use swsec_vm::cpu::RunOutcome;

use crate::experiments::fig4::{build_module, single_call, FnPtrChoice};
use crate::report::Table;

/// Instruction costs of one `get_secret` call.
#[derive(Debug, Clone, Copy)]
pub struct CallCost {
    /// Guest instructions for the whole call with the naive module.
    pub naive_instructions: u64,
    /// Guest instructions with the securely compiled module.
    pub secure_instructions: u64,
}

impl CallCost {
    /// Relative overhead of secure compilation.
    pub fn relative(&self) -> f64 {
        self.secure_instructions as f64 / self.naive_instructions as f64 - 1.0
    }
}

/// Full E12 results.
#[derive(Debug, Clone)]
pub struct PmaCostReport {
    /// The measured per-call costs.
    pub cost: CallCost,
}

impl PmaCostReport {
    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E12: guest-instruction cost of secure compilation (per module call)",
            &["compilation", "instructions / call", "overhead"],
        );
        t.row(vec![
            "naive".to_string(),
            self.cost.naive_instructions.to_string(),
            "-".to_string(),
        ]);
        t.row(vec![
            "secure (§IV-B checks + scrubbing)".to_string(),
            self.cost.secure_instructions.to_string(),
            format!("{:+.1}%", self.cost.relative() * 100.0),
        ]);
        t
    }
}

fn instructions_for(secure: bool) -> u64 {
    let module = build_module(57, secure);
    // Reuse the single-call harness but count instructions: replicate
    // its machine setup through a fresh call and read the stats.
    let (outcome, _) = single_call(&module, FnPtrChoice::HonestGetPin, 57);
    assert_eq!(outcome, RunOutcome::Halted(666));
    // single_call does not expose the machine; measure again inline.
    let module = build_module(57, secure);
    let mut m = crate::experiments::fig4::machine_for_cost_probe(&module, 57);
    let outcome = m.run(100_000);
    assert_eq!(outcome, RunOutcome::Halted(666));
    m.stats().instructions
}

/// Runs the E12 measurement.
pub fn compute() -> PmaCostReport {
    PmaCostReport {
        cost: CallCost {
            naive_instructions: instructions_for(false),
            secure_instructions: instructions_for(true),
        },
    }
}


/// E12 under the campaign API.
pub struct PmaCostExperiment;

impl crate::experiments::Experiment for PmaCostExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(12)
    }

    fn title(&self) -> &'static str {
        "Isolation cost"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        vec![report.table()]
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    
    use super::compute as run;

    #[test]
    fn secure_compilation_costs_a_bounded_premium() {
        let r = run();
        assert!(
            r.cost.secure_instructions > r.cost.naive_instructions,
            "secure compilation adds instructions"
        );
        // The premium is a handful of checks and scrubs per call, not a
        // multiple of the work.
        assert!(
            r.cost.relative() < 1.0,
            "overhead should stay below 2x, got {:+.1}%",
            r.cost.relative() * 100.0
        );
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("secure"));
    }
}
