//! Experiment E6 — countering the *introduction* of vulnerabilities
//! (§III-C2).
//!
//! A seeded-bug corpus measures the two tooling families the paper
//! surveys:
//!
//! * **static analysis** at two operating points — precise (low false
//!   positives, misses data-dependent bugs) and paranoid (catches more,
//!   pays in false alarms), reproducing the trade-off of \[13\];
//! * **test-time run-time checking** — detects every violation the
//!   test suite actually *triggers*, and nothing it does not (the
//!   false-negative mode the paper attributes to testing).

use swsec_defenses::analyzer::{analyze, Precision};
use swsec_defenses::runtime_check::check_with_tests;
use swsec_minc::parse;

use crate::report::Table;

/// One corpus program.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Name for reports.
    pub name: &'static str,
    /// MinC source.
    pub source: &'static str,
    /// Ground truth: does it contain a memory-safety bug?
    pub buggy: bool,
    /// A test input that triggers the bug (empty when not applicable).
    pub trigger: &'static [u8],
    /// A benign test input.
    pub benign: &'static [u8],
}

/// The seeded corpus: five buggy programs covering the §III-A classes
/// and five clean ones that superficially resemble them.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "overflow-constant",
            source: "void main() { char buf[16]; read(0, buf, 32); }",
            buggy: true,
            trigger: b"AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",
            benign: b"hi",
        },
        CorpusEntry {
            name: "overflow-data-dependent",
            source: "void main() { char len[1]; read(0, len, 1); \
                     char buf[8]; read(0, buf, len[0]); }",
            buggy: true,
            trigger: b"\x20AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA",
            benign: b"\x04abcd",
        },
        CorpusEntry {
            name: "index-constant-oob",
            source: "int main() { int a[4]; a[4] = 1; return 0; }",
            buggy: true,
            trigger: b"",
            benign: b"",
        },
        CorpusEntry {
            name: "index-data-dependent",
            source: "int main() { char c[1]; read(0, c, 1); int a[4]; \
                     a[c[0]] = 1; return 0; }",
            buggy: true,
            trigger: b"\x09",
            benign: b"\x02",
        },
        CorpusEntry {
            name: "dangling-return",
            source: "int *f() { int x = 1; return &x; }\n\
                     int main() { int *p = f(); return 0; }",
            buggy: true,
            trigger: b"",
            benign: b"",
        },
        CorpusEntry {
            name: "clean-echo",
            source: "void main() { char buf[16]; int n = read(0, buf, 16); write(1, buf, n); }",
            buggy: false,
            trigger: b"",
            benign: b"ping",
        },
        CorpusEntry {
            name: "clean-bounded-copy",
            source: "void main() { char src[8]; char dst[8]; read(0, src, 8); \
                     for (int i = 0; i < 8; i++) dst[i] = src[i]; write(1, dst, 8); }",
            buggy: false,
            trigger: b"",
            benign: b"12345678",
        },
        CorpusEntry {
            name: "clean-clamped-length",
            source: "void main() { char nb[1]; read(0, nb, 1); int n = nb[0]; \
                     if (n > 16) { n = 16; } char buf[16]; read(0, buf, n); }",
            buggy: false,
            trigger: b"",
            benign: b"\x40abc",
        },
        CorpusEntry {
            name: "clean-sum",
            source: "int main() { int a[8]; int s = 0; \
                     for (int i = 0; i < 8; i++) a[i] = i; \
                     for (int i = 0; i < 8; i++) s = s + a[i]; return s; }",
            buggy: false,
            trigger: b"",
            benign: b"",
        },
        CorpusEntry {
            name: "clean-global-ptr",
            source: "int g;\nint *addr() { return &g; }\n\
                     int main() { int *p = addr(); *p = 7; return g; }",
            buggy: false,
            trigger: b"",
            benign: b"",
        },
    ]
}

/// Detection counts for one tool configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Detection {
    /// Buggy programs flagged (true positives).
    pub true_positives: usize,
    /// Clean programs flagged (false positives).
    pub false_positives: usize,
    /// Buggy programs missed (false negatives).
    pub false_negatives: usize,
}

/// Full E6 results.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Static analysis, precise mode.
    pub precise: Detection,
    /// Static analysis, paranoid mode.
    pub paranoid: Detection,
    /// Run-time checking with trigger inputs included in the tests.
    pub runtime_with_trigger: Detection,
    /// Run-time checking with only benign tests.
    pub runtime_benign_only: Detection,
    /// Number of buggy / clean programs in the corpus.
    pub corpus_sizes: (usize, usize),
}

impl AnalysisReport {
    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E6: vulnerability-introduction countermeasures on the seeded corpus",
            &["tool", "true pos", "false pos", "false neg"],
        );
        let mut push = |name: &str, d: Detection| {
            t.row(vec![
                name.to_string(),
                d.true_positives.to_string(),
                d.false_positives.to_string(),
                d.false_negatives.to_string(),
            ]);
        };
        push("static analysis (precise)", self.precise);
        push("static analysis (paranoid)", self.paranoid);
        push("runtime checks + triggering tests", self.runtime_with_trigger);
        push("runtime checks, benign tests only", self.runtime_benign_only);
        t
    }
}

/// Runs the E6 measurement.
pub fn compute() -> AnalysisReport {
    let corpus = corpus();
    let buggy_count = corpus.iter().filter(|c| c.buggy).count();
    let clean_count = corpus.len() - buggy_count;

    let score = |flagged: &dyn Fn(&CorpusEntry) -> bool| -> Detection {
        let mut d = Detection::default();
        for entry in &corpus {
            let hit = flagged(entry);
            match (entry.buggy, hit) {
                (true, true) => d.true_positives += 1,
                (true, false) => d.false_negatives += 1,
                (false, true) => d.false_positives += 1,
                (false, false) => {}
            }
        }
        d
    };

    let precise = score(&|e: &CorpusEntry| {
        let unit = parse(e.source).expect("corpus parses");
        !analyze(&unit, Precision::Precise).is_empty()
    });
    let paranoid = score(&|e: &CorpusEntry| {
        let unit = parse(e.source).expect("corpus parses");
        !analyze(&unit, Precision::Paranoid).is_empty()
    });
    let runtime_with_trigger = score(&|e: &CorpusEntry| {
        let unit = parse(e.source).expect("corpus parses");
        let mut tests = vec![e.benign.to_vec()];
        if !e.trigger.is_empty() || e.buggy {
            tests.push(e.trigger.to_vec());
        }
        check_with_tests(&unit, &tests, 1_000_000)
            .expect("corpus compiles")
            .detected()
    });
    let runtime_benign_only = score(&|e: &CorpusEntry| {
        let unit = parse(e.source).expect("corpus parses");
        check_with_tests(&unit, &[e.benign.to_vec()], 1_000_000)
            .expect("corpus compiles")
            .detected()
    });

    AnalysisReport {
        precise,
        paranoid,
        runtime_with_trigger,
        runtime_benign_only,
        corpus_sizes: (buggy_count, clean_count),
    }
}


/// E6 under the campaign API.
pub struct AnalysisExperiment;

impl crate::experiments::Experiment for AnalysisExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(6)
    }

    fn title(&self) -> &'static str {
        "Static analysis and run-time checking"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        vec![report.table()]
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    
    use super::compute as run;

    #[test]
    fn corpus_is_balanced() {
        let r = run();
        assert_eq!(r.corpus_sizes, (5, 5));
    }

    #[test]
    fn precise_analysis_has_no_false_positives_but_misses_bugs() {
        let r = run();
        assert_eq!(r.precise.false_positives, 0);
        assert!(r.precise.false_negatives >= 1, "precise should miss data-dependent bugs");
        assert!(r.precise.true_positives >= 3);
    }

    #[test]
    fn paranoid_analysis_trades_false_positives_for_recall() {
        let r = run();
        assert!(r.paranoid.true_positives >= r.precise.true_positives);
        assert!(r.paranoid.false_positives >= 1, "paranoid should over-report");
        assert!(r.paranoid.false_negatives <= r.precise.false_negatives);
    }

    #[test]
    fn runtime_checks_catch_all_triggered_bugs_only() {
        let r = run();
        // With triggering tests: no false negatives (bugs that have a
        // trigger are caught; the dangling-return bug has no *write*
        // through the dangling pointer, so allow one miss).
        assert!(r.runtime_with_trigger.true_positives >= 4);
        assert_eq!(r.runtime_with_trigger.false_positives, 0);
        // Benign tests only: the data-dependent bugs escape.
        assert!(
            r.runtime_benign_only.true_positives < r.runtime_with_trigger.true_positives,
            "benign-only testing should detect less"
        );
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("static analysis"));
    }
}
