//! Experiment E2 — the vulnerability and attack catalogue of §III-A
//! and §III-B.
//!
//! Part 1 demonstrates the vulnerability *classes*: for each, the
//! reference semantics trap (the source specifies a violation) while
//! the unprotected machine sails past the trap point — the gap every
//! attack lives in.
//!
//! Part 2 runs every §III-B attack technique against the unprotected
//! platform and records the compromise.

use swsec_defenses::DefenseConfig;
use swsec_minc::interp::{self, InterpOutcome};
use swsec_minc::parse;

use crate::attacker::{run_technique_cached, Technique};
use crate::cache::ProgramCache;
use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::{single_cell_report, Experiment};
use crate::report::{ExperimentId, Report, Table};

/// A demonstrated vulnerability class.
#[derive(Debug, Clone)]
pub struct VulnDemo {
    /// Name of the class.
    pub name: &'static str,
    /// What the source semantics say (the trap message).
    pub source_verdict: String,
    /// Whether the reference semantics trapped, as expected.
    pub source_trapped: bool,
}

/// The catalogue results.
#[derive(Debug, Clone)]
pub struct Catalogue {
    /// Vulnerability-class demonstrations.
    pub vulnerabilities: Vec<VulnDemo>,
    /// Attack technique outcomes on the unprotected platform.
    pub attacks: Vec<(Technique, bool, String)>,
}

impl Catalogue {
    /// Renders both halves as tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut vulns = Table::new(
            "E2a: memory-safety vulnerability classes (§III-A)",
            &["class", "source-level verdict"],
        );
        for v in &self.vulnerabilities {
            vulns.row(vec![v.name.to_string(), v.source_verdict.clone()]);
        }
        let mut attacks = Table::new(
            "E2b: attack techniques vs the unprotected platform (§III-B)",
            &["technique", "result"],
        );
        for (t, ok, evidence) in &self.attacks {
            attacks.row(vec![
                t.label().to_string(),
                if *ok {
                    format!("COMPROMISED — {evidence}")
                } else {
                    evidence.clone()
                },
            ]);
        }
        vec![vulns, attacks]
    }
}

fn source_trap(src: &str, input: &[u8]) -> (bool, String) {
    let unit = parse(src).expect("demo source parses");
    let result = interp::run(&unit, &[(0, input.to_vec())], 1_000_000);
    match result.outcome {
        InterpOutcome::Trap(v) => (true, v.message),
        other => (false, format!("{other:?}")),
    }
}

/// Runs the catalogue, compiling victims through `cache`.
pub fn compute(seed: u64, cache: &ProgramCache) -> Catalogue {
    let spatial = source_trap(
        // The Figure 1 bug: the read length says 32 but the buffer is 16.
        "void get_request(int fd, char buf[]) { read(fd, buf, 32); }\n\
         void process(int fd) { char buf[16]; get_request(fd, buf); }\n\
         void main() { process(0); }",
        &[b'A'; 32],
    );
    let indexed = source_trap(
        // buf[i] = v with attacker-controlled i: the whole address space
        // at machine level, a defined trap at source level.
        "char table[16];\n\
         void main() { char cmd[5]; read(0, cmd, 5); \
          int idx = cmd[0] + (cmd[1] << 8); table[idx] = cmd[4]; }",
        &[0xFF, 0x7F, 0, 0, 0x41],
    );
    let temporal = source_trap(
        "int *escape() { int local = 7; return &local; }\n\
         void main() { int *p = escape(); exit(*p); }",
        &[],
    );
    let vulnerabilities = vec![
        VulnDemo {
            name: "spatial (buffer overflow)",
            source_verdict: spatial.1,
            source_trapped: spatial.0,
        },
        VulnDemo {
            name: "spatial (indexed write, full address space)",
            source_verdict: indexed.1,
            source_trapped: indexed.0,
        },
        VulnDemo {
            name: "temporal (dangling frame pointer)",
            source_verdict: temporal.1,
            source_trapped: temporal.0,
        },
    ];

    let attacks = Technique::ALL
        .iter()
        .map(|&t| {
            let result = run_technique_cached(t, DefenseConfig::none(), seed, cache)
                .expect("built-in victims compile");
            let ok = result.outcome.succeeded();
            let detail = match &result.outcome {
                crate::attacker::AttackOutcome::Success { evidence } => evidence.clone(),
                other => other.cell(),
            };
            (t, ok, detail)
        })
        .collect();

    Catalogue {
        vulnerabilities,
        attacks,
    }
}

/// E2 under the campaign API.
pub struct CatalogueExperiment;

impl Experiment for CatalogueExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::new(2)
    }

    fn title(&self) -> &'static str {
        "Vulnerability and attack catalogue"
    }

    fn run_cell(&self, cfg: &CampaignConfig, ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        compute(cfg.cell_seed(self.id(), cell), &ctx.cache).tables()
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64) -> Catalogue {
        compute(seed, &ProgramCache::new())
    }

    #[test]
    fn all_vulnerability_classes_trap_at_source_level() {
        let c = run(3);
        assert_eq!(c.vulnerabilities.len(), 3);
        for v in &c.vulnerabilities {
            assert!(v.source_trapped, "{} did not trap: {}", v.name, v.source_verdict);
        }
    }

    #[test]
    fn every_technique_compromises_unprotected_platform() {
        let c = run(3);
        assert_eq!(c.attacks.len(), 7);
        for (t, ok, cell) in &c.attacks {
            assert!(ok, "{t} did not succeed: {cell}");
        }
    }

    #[test]
    fn tables_render() {
        let tables = run(3).tables();
        assert_eq!(tables.len(), 2);
        assert!(tables[1].to_string().contains("COMPROMISED"));
    }
}
