//! Experiment E4 — ASLR as a probabilistic defense (§III-C1).
//!
//! ASLR does not remove the vulnerability; it makes each exploit
//! attempt a guess. This experiment measures the number of attempts a
//! brute-forcing attacker needs at several entropy levels and compares
//! against the analytic expectation of `2^bits`, then shows the
//! paper's caveat (\[5\]): one information leak collapses the search to
//! a single attempt.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use swsec_defenses::{AslrConfig, DefenseConfig};

use crate::attacker::{run_technique, Technique};
use crate::report::Table;

/// Result for one entropy level.
#[derive(Debug, Clone, Copy)]
pub struct AslrTrial {
    /// Entropy bits.
    pub bits: u8,
    /// Number of brute-force campaigns averaged.
    pub trials: u32,
    /// Mean attempts until the return-to-libc attack landed.
    pub mean_attempts: f64,
    /// Analytic expectation (`2^bits`).
    pub expected: f64,
    /// Attempts the leak-assisted attacker needed (always 1).
    pub leak_attempts: u32,
}

/// Sweep results.
#[derive(Debug, Clone)]
pub struct AslrSweep {
    /// One row per entropy level.
    pub rows: Vec<AslrTrial>,
}

impl AslrSweep {
    /// Renders the sweep.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E4: brute-forcing ASLR (return-to-libc until it lands)",
            &[
                "entropy bits",
                "trials",
                "mean attempts",
                "expected 2^bits",
                "leak-assisted attempts",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.bits.to_string(),
                r.trials.to_string(),
                format!("{:.1}", r.mean_attempts),
                format!("{:.0}", r.expected),
                r.leak_attempts.to_string(),
            ]);
        }
        t
    }
}

/// One brute-force campaign: fresh launches (fresh randomization each
/// time, like restarting a crashed server) until the fixed-guess attack
/// succeeds. Returns the number of attempts.
pub fn brute_force_once(bits: u8, rng: &mut StdRng, cap: u64) -> u64 {
    let mut config = DefenseConfig::none();
    config.aslr_bits = Some(bits);
    for attempt in 1..=cap {
        let seed: u64 = rng.gen();
        let result = run_technique(Technique::Ret2Libc, config, seed)
            .expect("victim compiles");
        if result.outcome.succeeded() {
            return attempt;
        }
    }
    cap
}

/// Runs the sweep. `trials_for` maps entropy bits to the number of
/// campaigns to average (fewer for high entropies to bound run time).
pub fn run(bits_levels: &[u8], base_trials: u32, master_seed: u64) -> AslrSweep {
    let mut rng = StdRng::seed_from_u64(master_seed);
    let mut rows = Vec::new();
    for &bits in bits_levels {
        let aslr = AslrConfig::bits(bits);
        let expected = aslr.expected_attempts();
        // Cap campaigns so the experiment terminates even when unlucky.
        let cap = (expected as u64) * 20 + 16;
        let trials = base_trials.max(1);
        let mut total = 0u64;
        for _ in 0..trials {
            total += brute_force_once(bits, &mut rng, cap);
        }
        // The leak-assisted attacker reads the randomized addresses out
        // of the leak: first attempt lands.
        let mut config = DefenseConfig::none();
        config.aslr_bits = Some(bits);
        let leak = run_technique(Technique::InfoLeak, config, rng.gen())
            .expect("victim compiles");
        rows.push(AslrTrial {
            bits,
            trials,
            mean_attempts: total as f64 / f64::from(trials),
            expected,
            leak_attempts: if leak.outcome.succeeded() { 1 } else { u32::MAX },
        });
    }
    AslrSweep { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_scale_with_entropy() {
        // Small entropies keep the test fast; the shape is what matters.
        let sweep = run(&[2, 4], 8, 7);
        let low = &sweep.rows[0];
        let high = &sweep.rows[1];
        assert!(low.mean_attempts >= 1.0);
        assert!(
            high.mean_attempts > low.mean_attempts,
            "more entropy must mean more attempts ({} vs {})",
            high.mean_attempts,
            low.mean_attempts
        );
        // Within a loose factor of the analytic expectation.
        for r in &sweep.rows {
            assert!(
                r.mean_attempts > r.expected * 0.15 && r.mean_attempts < r.expected * 6.0,
                "bits {}: mean {} vs expected {}",
                r.bits,
                r.mean_attempts,
                r.expected
            );
        }
    }

    #[test]
    fn leak_collapses_the_search() {
        let sweep = run(&[4], 2, 9);
        assert_eq!(sweep.rows[0].leak_attempts, 1);
    }

    #[test]
    fn table_renders() {
        let sweep = run(&[2], 2, 5);
        assert!(sweep.table().to_string().contains("entropy bits"));
    }
}
