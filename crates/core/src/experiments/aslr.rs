//! Experiment E4 — ASLR as a probabilistic defense (§III-C1).
//!
//! ASLR does not remove the vulnerability; it makes each exploit
//! attempt a guess. This experiment measures the number of attempts a
//! brute-forcing attacker needs at several entropy levels and compares
//! against the analytic expectation of `2^bits`, then shows the
//! paper's caveat (\[5\]): one information leak collapses the search to
//! a single attempt.

use swsec_attacks::Payload;
use swsec_rng::{derive, stream, Rng};

use swsec_defenses::{AslrConfig, DefenseConfig};

use crate::attacker::{attacker_view, run_technique_cached, Technique, VICTIM_SMASH};
use crate::cache::ProgramCache;
use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::Experiment;
use crate::harness::{AttackTarget, ForkServer, ServeMode};
use crate::loader::plan_options;
use crate::report::{ExperimentId, Report, Table};

/// Result for one entropy level.
#[derive(Debug, Clone, Copy)]
pub struct AslrTrial {
    /// Entropy bits.
    pub bits: u8,
    /// Number of brute-force campaigns averaged.
    pub trials: u32,
    /// Mean attempts until the return-to-libc attack landed.
    pub mean_attempts: f64,
    /// Analytic expectation (`2^bits`).
    pub expected: f64,
    /// Attempts the leak-assisted attacker needed (always 1).
    pub leak_attempts: u32,
}

/// Sweep results.
#[derive(Debug, Clone)]
pub struct AslrSweep {
    /// One row per entropy level.
    pub rows: Vec<AslrTrial>,
}

impl AslrSweep {
    /// Renders the sweep.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E4: brute-forcing ASLR (return-to-libc until it lands)",
            &[
                "entropy bits",
                "trials",
                "mean attempts",
                "expected 2^bits",
                "leak-assisted attempts",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.bits.to_string(),
                r.trials.to_string(),
                format!("{:.1}", r.mean_attempts),
                format!("{:.0}", r.expected),
                r.leak_attempts.to_string(),
            ]);
        }
        t
    }
}

/// The cap keeping an unlucky campaign from running forever.
fn attempt_cap(bits: u8) -> u64 {
    (AslrConfig::bits(bits).expected_attempts() as u64) * 20 + 16
}

/// One brute-force campaign against a forking server: the victim's
/// slide is drawn **once** (a forking server randomizes at boot and
/// serves every request from the same layout), and the attacker fires
/// return-to-libc payloads with a freshly guessed slide per attempt
/// until one lands. Returns the number of attempts.
///
/// The victim compiles once through `cache` and boots once; attempts
/// are served by the [`ForkServer`] under `mode` — snapshot restores
/// by default, per-attempt rebuilds for the equivalence baseline.
pub fn brute_force_once<R: Rng>(
    bits: u8,
    rng: &mut R,
    cap: u64,
    cache: &ProgramCache,
    mode: ServeMode,
) -> u64 {
    let mut config = DefenseConfig::none();
    config.aslr_bits = Some(bits);
    let victim_seed = rng.next_u64();
    let mut server = ForkServer::boot(cache, VICTIM_SMASH, config, victim_seed)
        .expect("victim compiles")
        .with_mode(mode);
    // The attacker's local copy sits at the default layout; each guess
    // re-slides the payload's target by a speculated ASLR draw. A guess
    // lands exactly when its text slide matches the victim's — one in
    // `2^bits`, the same geometric race the paper analyzes.
    let local = attacker_view(cache, VICTIM_SMASH, config).expect("local copy compiles");
    let grant = local.function_addr("grant").expect("grant exists");
    let text_base = local.layout.text_base;
    let guesses = (0..cap).map(|_| {
        let guessed = plan_options(&config, rng.next_u64()).layout.0.text_base;
        let target = grant.wrapping_sub(text_base).wrapping_add(guessed);
        let payload = Payload::smash(&local.frames["handle"], "buf", target)
            .expect("buf exists")
            .build();
        (victim_seed, payload)
    });
    let result = AttackTarget::search(&mut server, guesses, |r| r.emitted(1, b"SECRET"))
        .expect("attempts run");
    match result.hit {
        Some((attempt, _)) => attempt,
        None => cap,
    }
}

/// Whether the leak-assisted attacker lands on the first launch with
/// `seed` (it reads the randomized addresses out of the leak).
fn leak_first_attempt(bits: u8, seed: u64, cache: &ProgramCache) -> u32 {
    let mut config = DefenseConfig::none();
    config.aslr_bits = Some(bits);
    let leak = run_technique_cached(Technique::InfoLeak, config, seed, cache)
        .expect("victim compiles");
    if leak.outcome.succeeded() {
        1
    } else {
        u32::MAX
    }
}

/// Runs the sweep sequentially. Each (level, trial) pair draws its
/// attempt seeds from its own derived stream, so the result matches a
/// campaign run cell for cell.
pub fn compute(
    bits_levels: &[u8],
    base_trials: u32,
    master_seed: u64,
    cache: &ProgramCache,
    mode: ServeMode,
) -> AslrSweep {
    let trials = base_trials.max(1);
    let rows = bits_levels
        .iter()
        .map(|&bits| {
            let cap = attempt_cap(bits);
            let total: u64 = (0..trials)
                .map(|trial| {
                    let mut rng =
                        stream(master_seed, &[u64::from(bits), u64::from(trial)]);
                    brute_force_once(bits, &mut rng, cap, cache, mode)
                })
                .sum();
            let leak_seed = derive(master_seed, &[u64::from(bits), u64::from(trials)]);
            AslrTrial {
                bits,
                trials,
                mean_attempts: total as f64 / f64::from(trials),
                expected: AslrConfig::bits(bits).expected_attempts(),
                leak_attempts: leak_first_attempt(bits, leak_seed, cache),
            }
        })
        .collect();
    AslrSweep { rows }
}

/// E4 under the campaign API: one cell per (entropy level, campaign)
/// pair plus one leak-probe cell per level, so the expensive
/// high-entropy brute forces spread across workers.
pub struct AslrExperiment;

impl AslrExperiment {
    fn trials(cfg: &CampaignConfig) -> u32 {
        cfg.aslr_trials.max(1)
    }

    /// Cells per level: the brute-force trials plus the leak probe.
    fn stride(cfg: &CampaignConfig) -> usize {
        Self::trials(cfg) as usize + 1
    }
}

impl Experiment for AslrExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::new(4)
    }

    fn title(&self) -> &'static str {
        "ASLR brute-force sweep"
    }

    fn cells(&self, cfg: &CampaignConfig) -> usize {
        cfg.aslr_bits_levels.len().max(1) * Self::stride(cfg)
    }

    fn run_cell(&self, cfg: &CampaignConfig, ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        let stride = Self::stride(cfg);
        let bits = cfg.aslr_bits_levels[cell / stride];
        let k = cell % stride;
        let seed = cfg.cell_seed(self.id(), cell);
        let mut carrier = Table::new("cell", &["value"]);
        if k < Self::trials(cfg) as usize {
            let mut rng = stream(seed, &[0]);
            let attempts =
                brute_force_once(bits, &mut rng, attempt_cap(bits), &ctx.cache, cfg.serve_mode());
            carrier.row(vec![attempts.to_string()]);
        } else {
            carrier.row(vec![leak_first_attempt(bits, seed, &ctx.cache).to_string()]);
        }
        vec![carrier]
    }

    fn assemble(&self, cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        let stride = Self::stride(cfg);
        let trials = Self::trials(cfg);
        let rows = cfg
            .aslr_bits_levels
            .iter()
            .enumerate()
            .map(|(level, &bits)| {
                let base = level * stride;
                let value = |i: usize| -> u64 {
                    cells[base + i][0].rows[0][0].parse().expect("numeric carrier")
                };
                let total: u64 = (0..trials as usize).map(&value).sum();
                AslrTrial {
                    bits,
                    trials,
                    mean_attempts: total as f64 / f64::from(trials),
                    expected: AslrConfig::bits(bits).expected_attempts(),
                    leak_attempts: value(trials as usize) as u32,
                }
            })
            .collect();
        let mut report = Report::new(self.id(), self.title());
        report.tables.push(AslrSweep { rows }.table());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(bits_levels: &[u8], base_trials: u32, master_seed: u64) -> AslrSweep {
        compute(
            bits_levels,
            base_trials,
            master_seed,
            &ProgramCache::new(),
            ServeMode::Fork,
        )
    }

    #[test]
    fn fork_and_rebuild_brute_forces_agree_exactly() {
        for mode in [ServeMode::Fork, ServeMode::Rebuild] {
            let cache = ProgramCache::new();
            let sweep = compute(&[2, 3], 3, 11, &cache, mode);
            let other = compute(&[2, 3], 3, 11, &ProgramCache::new(), ServeMode::Fork);
            for (a, b) in sweep.rows.iter().zip(&other.rows) {
                assert_eq!(a.mean_attempts, b.mean_attempts, "{mode:?}");
                assert_eq!(a.leak_attempts, b.leak_attempts, "{mode:?}");
            }
        }
    }

    #[test]
    fn one_brute_force_compiles_each_distinct_image_once() {
        let cache = ProgramCache::new();
        let mut rng = stream(123, &[0]);
        let _ = brute_force_once(4, &mut rng, 64, &cache, ServeMode::Fork);
        let stats = cache.stats();
        // Exactly two distinct (source, options) pairs exist — the slid
        // victim and the attacker's default-layout local copy — and
        // each compiled at most once, however many attempts ran.
        assert_eq!(stats.requests(), 2);
        assert_eq!(stats.parses, 1);
        assert!(stats.misses <= 2);
    }

    #[test]
    fn attempts_scale_with_entropy() {
        // Small entropies keep the test fast; the shape is what matters.
        let sweep = run(&[2, 4], 8, 7);
        let low = &sweep.rows[0];
        let high = &sweep.rows[1];
        assert!(low.mean_attempts >= 1.0);
        assert!(
            high.mean_attempts > low.mean_attempts,
            "more entropy must mean more attempts ({} vs {})",
            high.mean_attempts,
            low.mean_attempts
        );
        // Within a loose factor of the analytic expectation.
        for r in &sweep.rows {
            assert!(
                r.mean_attempts > r.expected * 0.15 && r.mean_attempts < r.expected * 6.0,
                "bits {}: mean {} vs expected {}",
                r.bits,
                r.mean_attempts,
                r.expected
            );
        }
    }

    #[test]
    fn leak_collapses_the_search() {
        let sweep = run(&[4], 2, 9);
        assert_eq!(sweep.rows[0].leak_attempts, 1);
    }

    #[test]
    fn table_renders() {
        let sweep = run(&[2], 2, 5);
        assert!(sweep.table().to_string().contains("entropy bits"));
    }

    #[test]
    fn campaign_cells_reproduce_the_sequential_sweep_shape() {
        let cfg = CampaignConfig {
            aslr_bits_levels: vec![2],
            aslr_trials: 2,
            ..CampaignConfig::quick()
        };
        let report = AslrExperiment.run(&cfg);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 1);
        assert_eq!(report.tables[0].rows[0][4], "1", "leak lands first try");
    }
}
