//! Experiment E16 — the crash/fault matrix (§IV-C hardening).
//!
//! E11 shows *that* the two-phase continuity scheme beats rollback and
//! survives crashes; this experiment grinds the claim exhaustively and
//! adversarially, with every fault position derived from the campaign
//! seed via [`FaultPlan`]:
//!
//! * **E16a** — every [`CrashPoint`] × target-slot combination of the
//!   two-phase save protocol. For each cell the protocol runs enough
//!   completed saves that the *next* save lands in the targeted slot,
//!   the crash is injected there, and the cell asserts both liveness
//!   (recovery yields the old or the new state, never a brick) and
//!   rollback detection (replaying a day-one snapshot is reported
//!   [`ContinuityError::Stale`]).
//! * **E16b** — sealed-blob bit flips: tampering with the current
//!   blob, the stale blob, and both, asserting the scheme classifies
//!   each correctly (`Stale` with the surviving sequence, silent
//!   recovery, and [`ContinuityError::Corrupt`] respectively).
//! * **E16c** — a bit flip in a VM data page: a guest checksum
//!   program observes the corruption, and a sealed reference copy
//!   pinpoints the flipped byte (integrity detection).

use swsec_crypto::seal::{open, seal};
use swsec_pma::platform::ModuleKey;
use swsec_pma::{ContinuityError, CrashPoint, Platform, TwoPhaseContinuity, UntrustedStore};
use swsec_vm::cpu::{Machine, RunOutcome};
use swsec_vm::isa::{sys, AluOp, Cond, Instr, Reg};
use swsec_vm::mem::Perm;

use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::Experiment;
use crate::faults::{crash_point_label, FaultPlan, CRASH_POINTS};
use crate::report::{ExperimentId, Report, Table};

/// Number of crash cells: every crash point × both target slots.
const CRASH_CELLS: usize = CRASH_POINTS.len() * 2;
/// Cell index of the sealed-blob tampering cell.
const TAMPER_CELL: usize = CRASH_CELLS;
/// Cell index of the VM data-page bit-flip cell.
const VM_FLIP_CELL: usize = CRASH_CELLS + 1;

const CRASH_HEADERS: [&str; 5] = ["crash point", "target slot", "save", "recovered", "rollback replay"];
const TAMPER_HEADERS: [&str; 3] = ["tampered blob", "bit flipped", "load verdict"];
const VM_HEADERS: [&str; 4] = ["page", "bit flipped", "guest checksum", "sealed reference"];

fn state_bytes(n: u64) -> Vec<u8> {
    format!("state-v{n}").into_bytes()
}

/// One continuity setup with keys derived from the cell's fault plan.
fn setup(plan: &FaultPlan) -> (Platform, TwoPhaseContinuity, UntrustedStore) {
    let mut platform = Platform::new(plan.key_bytes(&[0]));
    let key = ModuleKey(plan.key_bytes(&[1]));
    let counter = platform.alloc_counter();
    let scheme = TwoPhaseContinuity::new(key, counter, 0, 1);
    (platform, scheme, UntrustedStore::new())
}

fn crash_cell(plan: &FaultPlan, cell: usize) -> Table {
    let point = CRASH_POINTS[cell / 2];
    let target_a = cell.is_multiple_of(2);
    // Even sequences go to slot A, odd to slot B: run enough completed
    // saves that the *injected* save lands in the targeted slot.
    let completed: u64 = if target_a { 3 } else { 2 };
    let (mut platform, mut scheme, mut store) = setup(plan);
    let mut day_one = None;
    for seq in 1..=completed {
        assert!(
            scheme.save(&mut platform, &mut store, &state_bytes(seq), CrashPoint::None),
            "uninjected save {seq} must complete"
        );
        if seq == 1 {
            // The attacker keeps the very first sealed state for the
            // later rollback replay.
            day_one = Some(store.snapshot());
        }
    }
    let day_one = day_one.expect("at least one completed save");
    let prev = state_bytes(completed);
    let next = state_bytes(completed + 1);
    let finished = scheme.save(&mut platform, &mut store, &next, point);

    // Liveness: whatever the crash point, recovery must yield the old
    // or the new state — never a brick.
    let recovered = scheme
        .load(&mut platform, &store)
        .unwrap_or_else(|e| panic!("liveness lost at {point:?}: {e}"));
    let recovered = if recovered == next {
        "new"
    } else if recovered == prev {
        "old"
    } else {
        panic!("recovered neither old nor new state at {point:?}")
    };

    // Rollback: replaying the day-one snapshot must be detected as
    // stale, with the replayed sequence identified.
    store.restore(day_one);
    let replay = match scheme.load(&mut platform, &store) {
        Err(ContinuityError::Stale { found: 1, .. }) => "detected (Stale, found seq 1)",
        other => panic!("rollback replay not detected at {point:?}: {other:?}"),
    };

    let mut t = Table::new("crash", &CRASH_HEADERS);
    t.row(vec![
        crash_point_label(point).to_string(),
        if target_a { "slot A" } else { "slot B" }.to_string(),
        // AfterBump never interrupts two-phase (the bump is the last
        // step), so that save completes like an uninjected one.
        if finished { "completed" } else { "interrupted" }.to_string(),
        recovered.to_string(),
        replay.to_string(),
    ]);
    t
}

fn tamper_verdict(result: Result<Vec<u8>, ContinuityError>, current: &[u8]) -> String {
    match result {
        Ok(state) => {
            assert_eq!(state, current, "recovered state must be the current one");
            "recovered current state".to_string()
        }
        Err(ContinuityError::Stale { found, expected }) => {
            format!("Stale (found seq {found}, expected {expected})")
        }
        Err(ContinuityError::Corrupt) => "Corrupt (tamper detected)".to_string(),
        Err(other) => panic!("unexpected tamper verdict: {other:?}"),
    }
}

fn tamper_cell(plan: &FaultPlan) -> Table {
    let (mut platform, mut scheme, mut store) = setup(plan);
    assert!(scheme.save(&mut platform, &mut store, &state_bytes(1), CrashPoint::None));
    assert!(scheme.save(&mut platform, &mut store, &state_bytes(2), CrashPoint::None));
    // Sequence 2 (even) is current and lives in slot A (0); sequence 1
    // is stale in slot B (1).
    let current = state_bytes(2);
    let mut t = Table::new("tamper", &TAMPER_HEADERS);
    let scenarios: [(&str, &[u32]); 3] =
        [("current (slot A)", &[0]), ("stale (slot B)", &[1]), ("both", &[0, 1])];
    for (scenario, (label, slots)) in scenarios.into_iter().enumerate() {
        let mut tampered = store.snapshot();
        let mut flips = Vec::new();
        for &slot in slots {
            let (byte, bit) = plan.bit_fault(&[2, scenario as u64, u64::from(slot)]);
            let (byte, bit) = tampered
                .flip_bit(slot, byte, bit)
                .expect("slot holds a blob");
            flips.push(format!("slot {slot} byte {byte} bit {bit}"));
        }
        let verdict = tamper_verdict(scheme.load(&mut platform, &tampered), &current);
        t.row(vec![label.to_string(), flips.join(", "), verdict]);
    }
    // The expected classifications, asserted (not just reported):
    assert!(t.rows[0][2].starts_with("Stale (found seq 1"));
    assert_eq!(t.rows[1][2], "recovered current state");
    assert!(t.rows[2][2].starts_with("Corrupt"));
    t
}

const CODE_BASE: u32 = 0x1000;
const PAGE_BASE: u32 = 0x2000;
const PAGE_LEN: usize = 256;

/// A checksum guest booted once and served per page via snapshot
/// restore: the VM program XOR-folds every byte of the data page into
/// its exit code. Each [`Self::checksum`] call rewinds to the
/// boot-time snapshot (copying back only the one data page the
/// previous call dirtied), pokes the new page, and reruns.
struct ChecksumGuest {
    machine: Machine,
    snapshot: swsec_vm::cpu::MachineSnapshot,
    page_len: usize,
}

impl ChecksumGuest {
    fn boot(page_len: usize) -> ChecksumGuest {
        let mut code = Vec::new();
        Instr::MovI { dst: Reg::R0, imm: 0 }.encode(&mut code);
        Instr::MovI { dst: Reg::R1, imm: PAGE_BASE }.encode(&mut code);
        Instr::MovI { dst: Reg::R2, imm: PAGE_BASE + page_len as u32 }.encode(&mut code);
        let loop_top = CODE_BASE + code.len() as u32;
        Instr::LoadB { dst: Reg::R3, base: Reg::R1, disp: 0 }.encode(&mut code);
        Instr::Alu { op: AluOp::Xor, dst: Reg::R0, src: Reg::R3 }.encode(&mut code);
        Instr::AddI { dst: Reg::R1, imm: 1 }.encode(&mut code);
        Instr::Cmp { a: Reg::R1, b: Reg::R2 }.encode(&mut code);
        Instr::JCond { cond: Cond::B, target: loop_top }.encode(&mut code);
        Instr::Sys(sys::EXIT).encode(&mut code);

        let mut machine = Machine::new();
        machine.mem_mut().map(CODE_BASE, 0x1000, Perm::RX).expect("map code");
        machine.mem_mut().map(PAGE_BASE, 0x1000, Perm::RW).expect("map data");
        machine.mem_mut().poke_bytes(CODE_BASE, &code).expect("load code");
        machine.set_ip(CODE_BASE);
        let snapshot = machine.snapshot();
        ChecksumGuest { machine, snapshot, page_len }
    }

    fn checksum(&mut self, page: &[u8]) -> u32 {
        assert_eq!(page.len(), self.page_len, "guest code is sized to the page");
        self.machine.restore_from(&self.snapshot);
        self.machine.mem_mut().poke_bytes(PAGE_BASE, page).expect("load page");
        match self.machine.run(50_000) {
            RunOutcome::Halted(code) => code,
            other => panic!("checksum guest did not halt: {other:?}"),
        }
    }
}

fn vm_flip_cell(plan: &FaultPlan) -> Table {
    let mut page = vec![0u8; PAGE_LEN];
    plan.fill(&mut page, &[0]);

    // Seal a reference copy before the fault: the integrity baseline a
    // protected module would keep for its own pages.
    let key = plan.key_bytes(&[1]);
    let nonce_material = plan.key_bytes(&[2]);
    let nonce: [u8; 12] = nonce_material[..12].try_into().expect("12 bytes");
    let sealed_ref = seal(&key, &nonce, b"vm-page-integrity", &page);

    // One guest serves both checksum runs: booted once, snapshotted,
    // and restored (one dirty page) between the clean and tampered
    // pages.
    let mut guest = ChecksumGuest::boot(PAGE_LEN);
    let clean_sum = guest.checksum(&page);
    let mut tampered = page.clone();
    let (byte, bit) = plan
        .flip_blob_bit(&mut tampered, &[3])
        .expect("page is non-empty");
    let tampered_sum = guest.checksum(&tampered);
    // A single bit flip always flips the same bit of the XOR fold.
    assert_ne!(clean_sum, tampered_sum, "bit flip must change the checksum");

    let reference = open(&key, b"vm-page-integrity", &sealed_ref).expect("reference unseals");
    let detected = reference
        .iter()
        .zip(&tampered)
        .position(|(a, b)| a != b)
        .expect("reference comparison finds the flip");
    assert_eq!(detected, byte, "sealed reference pinpoints the flipped byte");

    let mut t = Table::new("vmflip", &VM_HEADERS);
    t.row(vec![
        format!("{PAGE_LEN} B at {PAGE_BASE:#x}"),
        format!("byte {byte} bit {bit}"),
        format!("{clean_sum:#04x} -> {tampered_sum:#04x} (fault observed)"),
        format!("mismatch at byte {detected} (fault located)"),
    ]);
    t
}

/// The E16 driver.
pub struct CrashMatrixExperiment;

impl Experiment for CrashMatrixExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::new(16)
    }

    fn title(&self) -> &'static str {
        "Crash matrix — deterministic fault injection vs state continuity"
    }

    fn cells(&self, _cfg: &CampaignConfig) -> usize {
        CRASH_CELLS + 2
    }

    fn run_cell(&self, cfg: &CampaignConfig, _ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        let plan = FaultPlan::new(cfg.cell_seed(self.id(), cell));
        let table = match cell {
            c if c < CRASH_CELLS => crash_cell(&plan, c),
            TAMPER_CELL => tamper_cell(&plan),
            VM_FLIP_CELL => vm_flip_cell(&plan),
            other => unreachable!("E16 has {} cells, got {other}", CRASH_CELLS + 2),
        };
        vec![table]
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        let mut crash = Table::new(
            "E16a — two-phase save: crash point × target slot",
            &CRASH_HEADERS,
        );
        let mut tamper = Table::new("E16b — sealed-blob bit flips", &TAMPER_HEADERS);
        let mut vmflip = Table::new("E16c — VM data-page bit flip", &VM_HEADERS);
        for tables in cells {
            for t in tables {
                let dest = match t.title.as_str() {
                    "crash" => &mut crash,
                    "tamper" => &mut tamper,
                    "vmflip" => &mut vmflip,
                    other => unreachable!("unknown carrier table {other:?}"),
                };
                dest.rows.extend(t.rows);
            }
        }
        let mut report = Report::new(self.id(), self.title());
        report.tables = vec![crash, tamper, vmflip];
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Experiment;

    #[test]
    fn covers_every_crash_point_and_slot() {
        let cfg = CampaignConfig::default();
        let report = CrashMatrixExperiment.run(&cfg);
        assert_eq!(report.tables.len(), 3);
        let crash = &report.tables[0];
        assert_eq!(crash.rows.len(), CRASH_CELLS);
        for point in CRASH_POINTS {
            for slot in ["slot A", "slot B"] {
                assert!(
                    crash
                        .rows
                        .iter()
                        .any(|r| r[0] == crash_point_label(point) && r[1] == slot),
                    "missing {point:?} × {slot}"
                );
            }
        }
        // Every cell asserted liveness internally; the report records
        // the rollback verdict for each combination too.
        assert!(crash.rows.iter().all(|r| r[4].contains("detected")));
    }

    #[test]
    fn report_is_deterministic_in_the_seed() {
        let cfg = CampaignConfig::default();
        let a = CrashMatrixExperiment.run(&cfg);
        let b = CrashMatrixExperiment.run(&cfg);
        assert_eq!(a, b);
        let mut other = CampaignConfig::default();
        other.master_seed ^= 0xDEAD_BEEF;
        let c = CrashMatrixExperiment.run(&other);
        // Fault positions move with the seed (verdicts stay the same).
        assert_ne!(a.tables[2], c.tables[2]);
    }

    #[test]
    fn guest_checksum_matches_host_fold() {
        let page: Vec<u8> = (0..=255).collect();
        let host = page.iter().fold(0u8, |acc, b| acc ^ b);
        let mut guest = ChecksumGuest::boot(page.len());
        assert_eq!(guest.checksum(&page), u32::from(host));
        // Restores are clean: rerunning the same guest agrees, and a
        // different page changes the fold.
        assert_eq!(guest.checksum(&page), u32::from(host));
        let mut flipped = page.clone();
        flipped[0] ^= 0x80;
        assert_eq!(guest.checksum(&flipped), u32::from(host ^ 0x80));
    }
}
