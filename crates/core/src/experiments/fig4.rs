//! Experiment E9 — Figure 4 / §IV-B: secure compilation of protected
//! modules.
//!
//! The Figure 4 module takes a *function pointer* argument. A malicious
//! machine-code client passes the address of an instruction **inside**
//! the module — the `tries_left = 3` store — and thereby (a) resets the
//! brute-force lockout and (b) in this reproduction even rides the
//! module's own epilogue to exfiltrate the secret directly.
//!
//! The §IV-B countermeasure is a compiler-inserted defensive check:
//! a function-pointer argument must point *outside* the module. This
//! experiment runs the attack against the naively compiled module
//! (succeeds), against the securely compiled module (trapped), and
//! measures the practical consequence: a PIN brute force that is
//! impossible against the honest 3-tries lockout becomes trivial once
//! the attacker can reset it.

use swsec_attacks::find_instr_addr;
use swsec_minc::{compile, parse, CompileOptions, HardenOptions};
use swsec_pma::{ModuleImage, Platform};
use swsec_vm::cpu::{Fault, Machine, RunOutcome};
use swsec_vm::isa::{trap, Instr};
use swsec_vm::mem::Perm;
use swsec_vm::policy::ReentryPolicy;

use crate::report::Table;

const MODULE_CODE_BASE: u32 = 0x0a00_0000;
const MODULE_DATA_BASE: u32 = 0x0a10_0000;
const HOST_BASE: u32 = 0x0040_0000;
const CELLS_BASE: u32 = 0x0050_0000; // host RW scratch: cand, result, io
const STACK_TOP: u32 = 0xbfff_0ff0;

/// The Figure 4 module source (function-pointer parameter), with a
/// configurable PIN so brute-force runs stay short.
pub fn fig4_module_source(pin: u32) -> String {
    format!(
        "static int tries_left = 3;\n\
         static int PIN = {pin};\n\
         static int secret = 666;\n\
         int get_secret(int (*get_pin)()) {{\n\
             if (tries_left > 0) {{\n\
                 if (PIN == get_pin()) {{ tries_left = 3; return secret; }}\n\
                 else {{ tries_left--; return 0; }}\n\
             }} else return 0;\n\
         }}\n"
    )
}

/// A compiled Figure 4 module plus the facts the attacker derives from
/// the (public) binary.
#[derive(Debug, Clone)]
pub struct Fig4Module {
    /// The loadable image.
    pub image: ModuleImage,
    /// Address of the `get_secret` entry point.
    pub entry: u32,
    /// Address of the interior `tries_left = 3` instruction — the
    /// attack target.
    pub reset_gadget: u32,
    /// Address of the `tries_left` variable in module data.
    pub tries_left_addr: u32,
}

/// Compiles the module with the full strict-re-entry secure scheme
/// (continuation-stack out-calls; runs under `EntryPointsOnly`).
pub fn build_module_strict(pin: u32) -> Fig4Module {
    build_module_with(pin, HardenOptions::secure_module_strict())
}

/// Compiles the module, naively or securely.
pub fn build_module(pin: u32, secure: bool) -> Fig4Module {
    build_module_with(
        pin,
        if secure {
            HardenOptions::secure_module()
        } else {
            HardenOptions::none()
        },
    )
}

fn build_module_with(pin: u32, harden: HardenOptions) -> Fig4Module {
    let unit = parse(&fig4_module_source(pin)).expect("module parses");
    let mut opts = CompileOptions {
        no_start: true,
        harden,
        ..CompileOptions::default()
    };
    opts.layout.0.text_base = MODULE_CODE_BASE;
    opts.layout.0.data_base = MODULE_DATA_BASE;
    let program = compile(&unit, &opts).expect("module compiles");
    let entry = program.function_addr("get_secret").expect("exported");
    let reset_gadget = find_instr_addr(&program.text, program.text_base, |i| {
        matches!(i, Instr::MovI { imm: 3, .. })
    })
    .expect("the tries_left = 3 store exists");
    let tries_left_addr = program.globals["tries_left"].addr;
    Fig4Module {
        image: ModuleImage::from_compiled(&program),
        entry,
        reset_gadget,
        tries_left_addr,
    }
}

fn machine_with(module: &Fig4Module, host_asm: &str) -> Machine {
    machine_with_policy(module, host_asm, ReentryPolicy::AllowReturns)
}

fn machine_with_policy(module: &Fig4Module, host_asm: &str, policy: ReentryPolicy) -> Machine {
    let mut platform = Platform::new([0x24; 32]);
    let mut m = Machine::new();
    platform
        .load_module(&mut m, &module.image, policy)
        .expect("module loads");
    let host = swsec_asm::assemble(host_asm).expect("host assembles");
    m.mem_mut().map(HOST_BASE, 0x1000, Perm::RX).expect("maps");
    m.mem_mut().poke_bytes(HOST_BASE, &host.bytes).expect("pokes");
    m.mem_mut().map(CELLS_BASE, 0x1000, Perm::RW).expect("maps");
    m.mem_mut().map(STACK_TOP - 0xff0, 0x1000, Perm::RW).expect("maps");
    m.set_reg(swsec_vm::isa::Reg::Sp, STACK_TOP);
    m.set_reg(swsec_vm::isa::Reg::Bp, STACK_TOP);
    m.set_ip(HOST_BASE);
    m
}

/// Calls `get_secret` once with the given function-pointer value
/// (either the host's honest `get_pin`, or the attack gadget).
/// Returns the run outcome and the value of `tries_left` afterwards.
pub fn single_call(module: &Fig4Module, fnptr: FnPtrChoice, candidate: u32) -> (RunOutcome, u32) {
    single_call_with_policy(module, fnptr, candidate, ReentryPolicy::AllowReturns)
}

/// Like [`single_call`], with an explicit re-entry policy — used to
/// show that relaxed-compiled modules break under `EntryPointsOnly`
/// while strict-compiled ones keep working.
pub fn single_call_with_policy(
    module: &Fig4Module,
    fnptr: FnPtrChoice,
    candidate: u32,
    policy: ReentryPolicy,
) -> (RunOutcome, u32) {
    let fnptr_operand = match fnptr {
        FnPtrChoice::HonestGetPin => "honest".to_string(),
        FnPtrChoice::ResetGadget => format!("{:#x}", module.reset_gadget),
    };
    let host = format!(
        ".org {HOST_BASE:#x}\n\
         movi r0, {fnptr_operand}\n\
         push r0\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         sys 0\n\
         honest:\n\
         movi r0, {candidate:#x}\n\
         ret\n",
        entry = module.entry,
    );
    let mut m = machine_with_policy(module, &host, policy);
    let outcome = m.run(100_000);
    let tries = m.mem().peek_u32(module.tries_left_addr).unwrap_or(u32::MAX);
    (outcome, tries)
}

/// A malicious host jumping directly to an interior instruction of the
/// module (not an entry point) under the strict policy: the PMA entry
/// rule must refuse before a single module instruction runs.
pub fn single_call_interior_jump(module: &Fig4Module) -> (RunOutcome, u32) {
    let host = format!(
        ".org {HOST_BASE:#x}\n\
         jmp {target:#x}\n",
        target = module.reset_gadget,
    );
    let mut m = machine_with_policy(module, &host, ReentryPolicy::EntryPointsOnly);
    let outcome = m.run(100_000);
    let tries = m.mem().peek_u32(module.tries_left_addr).unwrap_or(u32::MAX);
    (outcome, tries)
}

/// A malicious host jumping straight to the module's return-entry stub
/// with no pending out-call (strict modules must refuse: continuation
/// underflow).
pub fn jump_to_reentry(module: &Fig4Module) -> RunOutcome {
    let reentry = module
        .image
        .export_addr("__reentry")
        .expect("strict module has a return entry");
    let host = format!(
        ".org {HOST_BASE:#x}\n\
         jmp {reentry:#x}\n"
    );
    let mut m = machine_with_policy(module, &host, ReentryPolicy::EntryPointsOnly);
    m.run(100_000)
}

/// Builds the single-call machine without running it, so callers can
/// inspect execution statistics (used by E12).
pub fn machine_for_cost_probe(module: &Fig4Module, candidate: u32) -> Machine {
    let host = format!(
        ".org {HOST_BASE:#x}\n\
         movi r0, honest\n\
         push r0\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         sys 0\n\
         honest:\n\
         movi r0, {candidate:#x}\n\
         ret\n",
        entry = module.entry,
    );
    machine_with(module, &host)
}

/// Which function pointer the client passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnPtrChoice {
    /// The host's legitimate `get_pin` implementation (outside the
    /// module).
    HonestGetPin,
    /// The address of the interior `tries_left = 3` instruction.
    ResetGadget,
}

/// Result of a brute-force campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForce {
    /// Whether the PIN was recovered.
    pub found: bool,
    /// Guesses spent.
    pub guesses: u32,
    /// Whether the campaign was stopped by a defensive trap.
    pub trapped: bool,
}

/// Brute-forces the PIN over `0..space`, optionally resetting the
/// lockout through the gadget before every guess.
pub fn brute_force(module: &Fig4Module, space: u32, with_reset: bool) -> BruteForce {
    let reset_block = if with_reset {
        format!(
            "movi r0, {gadget:#x}\n\
             push r0\n\
             call {entry:#x}\n\
             addi sp, 4\n",
            gadget = module.reset_gadget,
            entry = module.entry,
        )
    } else {
        String::new()
    };
    let host = format!(
        ".org {HOST_BASE:#x}\n\
         loop:\n\
         movi r0, 0\n\
         movi r1, {scratch:#x}\n\
         movi r2, 4\n\
         sys 1\n\
         movi r1, {scratch:#x}\n\
         load r3, [r1]\n\
         movi r1, {cand:#x}\n\
         store [r1], r3\n\
         {reset_block}\
         movi r0, honest\n\
         push r0\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         movi r1, {result:#x}\n\
         store [r1], r0\n\
         movi r0, 1\n\
         movi r1, {result:#x}\n\
         movi r2, 4\n\
         sys 2\n\
         jmp loop\n\
         honest:\n\
         movi r1, {cand:#x}\n\
         load r0, [r1]\n\
         ret\n",
        scratch = CELLS_BASE + 8,
        cand = CELLS_BASE,
        result = CELLS_BASE + 4,
        entry = module.entry,
    );
    let mut m = machine_with(module, &host);
    m.set_blocking_reads(true);

    let mut guesses = 0u32;
    for candidate in 0..space {
        m.io_mut().feed_input(0, &candidate.to_le_bytes());
        guesses += 1;
        match m.run(1_000_000) {
            RunOutcome::Blocked { .. } => {
                let out = m.io().output(1);
                let last = &out[out.len() - 4..];
                let result = u32::from_le_bytes(last.try_into().expect("4 bytes"));
                if result != 0 {
                    return BruteForce {
                        found: true,
                        guesses,
                        trapped: false,
                    };
                }
            }
            RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::FNPTR => {
                return BruteForce {
                    found: false,
                    guesses,
                    trapped: true,
                };
            }
            other => panic!("unexpected brute-force outcome: {other:?}"),
        }
    }
    BruteForce {
        found: false,
        guesses,
        trapped: false,
    }
}

/// Full E9 results.
#[derive(Debug, Clone)]
pub struct Fig4Report {
    /// (compilation, scenario, outcome, tries_left after).
    pub calls: Vec<(&'static str, &'static str, String, u32)>,
    /// Brute force without the reset gadget (honest lockout).
    pub honest_brute: BruteForce,
    /// Brute force with the reset gadget against the naive module.
    pub naive_brute: BruteForce,
    /// Brute force with the reset gadget against the secure module.
    pub secure_brute: BruteForce,
    /// The PIN used.
    pub pin: u32,
}

impl Fig4Report {
    /// Renders the report.
    pub fn tables(&self) -> Vec<Table> {
        let mut calls = Table::new(
            "E9a: Figure 4 function-pointer calls into the module",
            &["compilation", "call", "outcome", "tries_left after"],
        );
        for (compilation, scenario, outcome, tries) in &self.calls {
            calls.row(vec![
                compilation.to_string(),
                scenario.to_string(),
                outcome.clone(),
                tries.to_string(),
            ]);
        }
        let mut brute = Table::new(
            "E9b: PIN brute force (3-tries lockout, reset gadget)",
            &["campaign", "PIN found", "guesses", "stopped by check"],
        );
        let mut push = |name: &str, b: BruteForce| {
            brute.row(vec![
                name.to_string(),
                b.found.to_string(),
                b.guesses.to_string(),
                b.trapped.to_string(),
            ]);
        };
        push("honest client, no reset", self.honest_brute);
        push("attack on naive compilation", self.naive_brute);
        push("attack on secure compilation", self.secure_brute);
        vec![calls, brute]
    }
}

/// Runs the E9 experiment with a small PIN space.
pub fn compute() -> Fig4Report {
    let pin = 57;
    let space = 100;
    let naive = build_module(pin, false);
    let secure = build_module(pin, true);

    let mut calls = Vec::new();
    // Legitimate use, correct PIN.
    let (o, t) = single_call(&naive, FnPtrChoice::HonestGetPin, pin);
    calls.push(("naive", "honest get_pin, right PIN", o.to_string(), t));
    let (o, t) = single_call(&secure, FnPtrChoice::HonestGetPin, pin);
    calls.push(("secure", "honest get_pin, right PIN", o.to_string(), t));
    // Legitimate use, wrong PIN.
    let (o, t) = single_call(&naive, FnPtrChoice::HonestGetPin, pin + 1);
    calls.push(("naive", "honest get_pin, wrong PIN", o.to_string(), t));
    // The attack.
    let (o, t) = single_call(&naive, FnPtrChoice::ResetGadget, 0);
    calls.push(("naive", "ATTACK: interior pointer", o.to_string(), t));
    let (o, t) = single_call(&secure, FnPtrChoice::ResetGadget, 0);
    calls.push(("secure", "ATTACK: interior pointer", o.to_string(), t));

    let honest_brute = brute_force(&build_module(pin, false), space, false);
    let naive_brute = brute_force(&build_module(pin, false), space, true);
    let secure_brute = brute_force(&build_module(pin, true), space, true);

    Fig4Report {
        calls,
        honest_brute,
        naive_brute,
        secure_brute,
        pin,
    }
}


/// E9 under the campaign API.
pub struct Fig4Experiment;

impl crate::experiments::Experiment for Fig4Experiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(9)
    }

    fn title(&self) -> &'static str {
        "Figure 4: secure compilation"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        report.tables()
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::compute as run;

    #[test]
    fn legitimate_calls_work_on_both_compilations() {
        let pin = 57;
        let naive = build_module(pin, false);
        let secure = build_module(pin, true);
        let (o, t) = single_call(&naive, FnPtrChoice::HonestGetPin, pin);
        assert_eq!(o, RunOutcome::Halted(666));
        assert_eq!(t, 3);
        let (o, t) = single_call(&secure, FnPtrChoice::HonestGetPin, pin);
        assert_eq!(o, RunOutcome::Halted(666));
        assert_eq!(t, 3);
        // Wrong PIN burns a try.
        let (o, t) = single_call(&naive, FnPtrChoice::HonestGetPin, pin + 1);
        assert_eq!(o, RunOutcome::Halted(0));
        assert_eq!(t, 2);
    }

    #[test]
    fn interior_pointer_attack_succeeds_on_naive_compilation() {
        let module = build_module(57, false);
        let (outcome, tries) = single_call(&module, FnPtrChoice::ResetGadget, 0);
        // The jump into `tries_left = 3; return secret;` rides the
        // module epilogue out: the secret escapes AND the lockout reset.
        assert_eq!(outcome, RunOutcome::Halted(666));
        assert_eq!(tries, 3);
    }

    #[test]
    fn defensive_check_blocks_the_attack_on_secure_compilation() {
        let module = build_module(57, true);
        let (outcome, tries) = single_call(&module, FnPtrChoice::ResetGadget, 0);
        assert!(
            matches!(
                outcome,
                RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::FNPTR
            ),
            "expected the fnptr trap, got {outcome:?}"
        );
        assert_eq!(tries, 3, "tries_left untouched");
    }

    #[test]
    fn lockout_defeats_honest_brute_force() {
        let b = brute_force(&build_module(57, false), 100, false);
        assert!(!b.found, "lockout must hold");
    }

    #[test]
    fn reset_gadget_enables_brute_force_on_naive_compilation() {
        let b = brute_force(&build_module(57, false), 100, true);
        assert!(b.found);
        assert_eq!(b.guesses, 58); // candidates 0..=57
    }

    #[test]
    fn secure_compilation_stops_the_brute_force() {
        let b = brute_force(&build_module(57, true), 100, true);
        assert!(!b.found);
        assert!(b.trapped);
        assert_eq!(b.guesses, 1, "trapped on the first reset attempt");
    }

    #[test]
    fn report_tables_render() {
        let tables = run().tables();
        assert_eq!(tables.len(), 2);
        assert!(tables[1].to_string().contains("reset"));
    }
}
