//! Experiment E13 (extension) — strict-policy secure compilation.
//!
//! The paper states the entry rule absolutely: "the only way for the
//! IP to enter a protected module is by jumping to one of the
//! designated entry points." A module that calls *out* (the Figure 4
//! module calls `get_pin()`) then has a problem: the external code's
//! `ret` re-enters the module at an arbitrary interior address. The
//! relaxed `AllowReturns` policy tolerates that; the full secure-
//! compilation scheme of the paper's reference \[30\] does not need the
//! relaxation: the compiler routes every out-call through a protected
//! continuation stack and a single designated *return entry point*.
//!
//! This experiment shows the whole story:
//!
//! * a relaxed-compiled module is functionally **broken** under the
//!   strict policy (its first out-call never comes back);
//! * the strict-compiled module works under the strict policy;
//! * the Figure 4 interior-pointer attack is still trapped;
//! * jumping straight to the return entry with no pending out-call
//!   trips the continuation-underflow check;
//! * jumping anywhere else trips the PMA entry rule itself.

use swsec_vm::cpu::{Fault, RunOutcome};
use swsec_vm::isa::trap;
use swsec_vm::policy::ReentryPolicy;

use crate::experiments::fig4::{
    self, build_module, build_module_strict, jump_to_reentry, single_call_with_policy,
    FnPtrChoice,
};
use crate::report::Table;

/// One scenario row.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Description.
    pub name: &'static str,
    /// What happened.
    pub outcome: String,
    /// Whether it matches the secure-compilation claim.
    pub ok: bool,
}

/// Full E13 results.
#[derive(Debug, Clone)]
pub struct StrictReport {
    /// The scenarios.
    pub scenarios: Vec<Scenario>,
}

impl StrictReport {
    /// Whether every scenario matched expectations.
    pub fn all_ok(&self) -> bool {
        self.scenarios.iter().all(|s| s.ok)
    }

    /// Renders the report.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E13: secure compilation under the strict EntryPointsOnly policy",
            &["scenario", "outcome", "as specified"],
        );
        for s in &self.scenarios {
            t.row(vec![
                s.name.to_string(),
                s.outcome.clone(),
                if s.ok { "✓" } else { "✗" }.to_string(),
            ]);
        }
        t
    }
}

/// Runs the E13 experiment.
pub fn compute() -> StrictReport {
    let pin = 57;
    let mut scenarios = Vec::new();

    // 1. Relaxed compilation under the strict policy: the legitimate
    //    call breaks when the external get_pin tries to return.
    {
        let module = build_module(pin, true);
        let (outcome, _) = single_call_with_policy(
            &module,
            FnPtrChoice::HonestGetPin,
            pin,
            ReentryPolicy::EntryPointsOnly,
        );
        let ok = matches!(outcome, RunOutcome::Fault(Fault::Pma(_)));
        scenarios.push(Scenario {
            name: "relaxed compile, strict policy: honest call",
            outcome: outcome.to_string(),
            ok,
        });
    }

    // 2. Strict compilation under the strict policy: works.
    {
        let module = build_module_strict(pin);
        let (outcome, tries) = single_call_with_policy(
            &module,
            FnPtrChoice::HonestGetPin,
            pin,
            ReentryPolicy::EntryPointsOnly,
        );
        let ok = outcome == RunOutcome::Halted(666) && tries == 3;
        scenarios.push(Scenario {
            name: "strict compile, strict policy: honest call",
            outcome: outcome.to_string(),
            ok,
        });
    }

    // 3. Wrong PIN still burns a try (functional parity).
    {
        let module = build_module_strict(pin);
        let (outcome, tries) = single_call_with_policy(
            &module,
            FnPtrChoice::HonestGetPin,
            pin + 1,
            ReentryPolicy::EntryPointsOnly,
        );
        let ok = outcome == RunOutcome::Halted(0) && tries == 2;
        scenarios.push(Scenario {
            name: "strict compile: wrong PIN burns a try",
            outcome: format!("{outcome}; tries_left = {tries}"),
            ok,
        });
    }

    // 4. The Figure 4 interior-pointer attack: trapped by the fnptr
    //    defensive check before any transfer happens.
    {
        let module = build_module_strict(pin);
        let (outcome, tries) = single_call_with_policy(
            &module,
            FnPtrChoice::ResetGadget,
            0,
            ReentryPolicy::EntryPointsOnly,
        );
        let ok = matches!(
            outcome,
            RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::FNPTR
        ) && tries == 3;
        scenarios.push(Scenario {
            name: "strict compile: interior-pointer attack",
            outcome: outcome.to_string(),
            ok,
        });
    }

    // 5. Jumping straight to the return entry without a pending
    //    out-call: the continuation-underflow check fires.
    {
        let module = build_module_strict(pin);
        let outcome = jump_to_reentry(&module);
        let ok = matches!(
            outcome,
            RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::ASSERT
        );
        scenarios.push(Scenario {
            name: "malicious jump to the return entry",
            outcome: outcome.to_string(),
            ok,
        });
    }

    // 6. Jumping to an interior instruction from outside: the PMA
    //    entry rule itself refuses.
    {
        let module = build_module_strict(pin);
        let (outcome, _) = fig4::single_call_interior_jump(&module);
        let ok = matches!(outcome, RunOutcome::Fault(Fault::Pma(_)));
        scenarios.push(Scenario {
            name: "malicious jump into the module interior",
            outcome: outcome.to_string(),
            ok,
        });
    }

    StrictReport { scenarios }
}


/// E13 under the campaign API.
pub struct StrictReentryExperiment;

impl crate::experiments::Experiment for StrictReentryExperiment {
    fn id(&self) -> crate::report::ExperimentId {
        crate::report::ExperimentId::new(13)
    }

    fn title(&self) -> &'static str {
        "Strict-policy secure compilation"
    }

    fn run_cell(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        _ctx: &crate::campaign::CampaignCtx,
        _cell: usize,
    ) -> Vec<crate::report::Table> {
        let report = compute();
        vec![report.table()]
    }

    fn assemble(
        &self,
        _cfg: &crate::campaign::CampaignConfig,
        cells: Vec<Vec<crate::report::Table>>,
    ) -> crate::report::Report {
        crate::experiments::single_cell_report(self.id(), self.title(), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::compute as run;

    #[test]
    fn all_strict_scenarios_hold() {
        let r = run();
        assert!(r.all_ok(), "{:#?}", r.scenarios);
        assert_eq!(r.scenarios.len(), 6);
    }

    #[test]
    fn strict_module_survives_repeated_calls() {
        // The continuation stack must balance across calls: three calls
        // in a row through one machine.
        let module = build_module_strict(57);
        for _ in 0..3 {
            let (outcome, _) = single_call_with_policy(
                &module,
                FnPtrChoice::HonestGetPin,
                57,
                ReentryPolicy::EntryPointsOnly,
            );
            assert_eq!(outcome, RunOutcome::Halted(666));
        }
    }

    #[test]
    fn table_renders() {
        assert!(run().table().to_string().contains("strict"));
    }
}
