//! Experiment E3 — the attack × countermeasure matrix (§III-C1).
//!
//! The paper's central qualitative claim about exploit mitigation:
//! "while the combination of these countermeasures raises the bar for
//! attackers, it is commonly accepted that many memory safety
//! vulnerabilities remain exploitable through clever combinations of
//! attack techniques." The matrix makes the claim quantitative: every
//! technique against every deployed configuration.

use swsec_defenses::DefenseConfig;

use crate::attacker::{run_technique_cached, AttackOutcome, Technique};
use crate::cache::ProgramCache;
use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::Experiment;
use crate::report::{ExperimentId, Report, Table};

const TITLE: &str = "E3: attack techniques × deployed countermeasures";

/// How one matrix cell renders.
pub(crate) fn outcome_cell(o: &AttackOutcome) -> String {
    if o.succeeded() {
        "COMPROMISED".to_string()
    } else {
        match o {
            AttackOutcome::Blocked { by } => format!("✗ {by}"),
            AttackOutcome::Failed { .. } => "✗ failed".to_string(),
            AttackOutcome::Success { .. } => unreachable!("handled above"),
        }
    }
}

/// The standard configurations of the experiment, in escalation order.
pub fn standard_configs() -> Vec<DefenseConfig> {
    let mut canary = DefenseConfig::none();
    canary.canary = true;
    let mut dep = DefenseConfig::none();
    dep.dep = true;
    let mut aslr = DefenseConfig::none();
    aslr.aslr_bits = Some(8);
    let mut canary_dep = DefenseConfig::none();
    canary_dep.canary = true;
    canary_dep.dep = true;
    let modern = DefenseConfig::modern(8);
    let mut modern_shadow = modern;
    modern_shadow.shadow_stack = true;
    let mut bounds = DefenseConfig::none();
    bounds.bounds_checks = true;
    vec![
        DefenseConfig::none(),
        canary,
        dep,
        aslr,
        canary_dep,
        modern,
        modern_shadow,
        bounds,
    ]
}

/// The full matrix of outcomes.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// The configurations (column order).
    pub configs: Vec<DefenseConfig>,
    /// Row per technique: outcomes parallel to `configs`.
    pub rows: Vec<(Technique, Vec<AttackOutcome>)>,
}

impl Matrix {
    /// The outcome for one (technique, config) pair.
    pub fn outcome(&self, t: Technique, config_idx: usize) -> &AttackOutcome {
        &self
            .rows
            .iter()
            .find(|(rt, _)| *rt == t)
            .expect("technique present")
            .1[config_idx]
    }

    /// How many techniques compromise each configuration.
    pub fn compromises_per_config(&self) -> Vec<usize> {
        (0..self.configs.len())
            .map(|i| {
                self.rows
                    .iter()
                    .filter(|(_, outcomes)| outcomes[i].succeeded())
                    .count()
            })
            .collect()
    }

    /// Renders the matrix.
    pub fn table(&self) -> Table {
        let mut headers = vec!["technique".to_string()];
        headers.extend(self.configs.iter().map(|c| c.label()));
        let mut table = Table {
            title: TITLE.into(),
            headers,
            rows: Vec::new(),
        };
        for (t, outcomes) in &self.rows {
            let mut row = vec![t.label().to_string()];
            row.extend(outcomes.iter().map(outcome_cell));
            table.rows.push(row);
        }
        table
    }
}

/// Runs the full matrix with the given victim-launch seed, compiling
/// each victim/configuration pair through `cache` exactly once.
pub fn compute(seed: u64, cache: &ProgramCache) -> Matrix {
    let configs = standard_configs();
    let rows = Technique::ALL
        .iter()
        .map(|&t| {
            let outcomes = configs
                .iter()
                .map(|&c| {
                    run_technique_cached(t, c, seed, cache)
                        .expect("built-in victims compile")
                        .outcome
                })
                .collect();
            (t, outcomes)
        })
        .collect();
    Matrix { configs, rows }
}

/// E3 under the campaign API: one cell per technique × configuration
/// pair (7 × 8 = 56), so the matrix fans out across the campaign pool.
pub struct MatrixExperiment;

impl Experiment for MatrixExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::new(3)
    }

    fn title(&self) -> &'static str {
        "Attack × countermeasure matrix"
    }

    fn cells(&self, _cfg: &CampaignConfig) -> usize {
        Technique::ALL.len() * standard_configs().len()
    }

    fn run_cell(&self, cfg: &CampaignConfig, ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        let configs = standard_configs();
        let technique = Technique::ALL[cell / configs.len()];
        let config = configs[cell % configs.len()];
        let result = run_technique_cached(
            technique,
            config,
            cfg.cell_seed(self.id(), cell),
            &ctx.cache,
        )
        .expect("built-in victims compile");
        let mut carrier = Table::new("cell", &["outcome"]);
        carrier.row(vec![outcome_cell(&result.outcome)]);
        vec![carrier]
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        let configs = standard_configs();
        let mut headers = vec!["technique".to_string()];
        headers.extend(configs.iter().map(|c| c.label()));
        let mut table = Table {
            title: TITLE.into(),
            headers,
            rows: Vec::new(),
        };
        for (ti, t) in Technique::ALL.iter().enumerate() {
            let mut row = vec![t.label().to_string()];
            for ci in 0..configs.len() {
                row.push(cells[ti * configs.len() + ci][0].rows[0][0].clone());
            }
            table.rows.push(row);
        }
        let mut report = Report::new(self.id(), self.title());
        report.tables.push(table);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64) -> Matrix {
        compute(seed, &ProgramCache::new())
    }

    #[test]
    fn matrix_shape_matches_the_papers_claims() {
        let m = run(42);
        let per_config = m.compromises_per_config();
        // Unprotected: everything wins.
        assert_eq!(per_config[0], 7);
        // Every non-bounds configuration is compromised by something…
        for (i, &count) in per_config.iter().enumerate().take(7) {
            assert!(
                count >= 1,
                "config {} unexpectedly blocked everything",
                m.configs[i].label()
            );
        }
        // …and escalating defenses monotonically help at the extremes:
        // the modern stack admits fewer attacks than nothing.
        assert!(per_config[5] < per_config[0]);
        // Full memory safety (bounds checks) blocks all seven.
        assert_eq!(per_config[7], 0);
    }

    #[test]
    fn data_only_wins_everywhere_except_memory_safety() {
        let m = run(42);
        for (i, config) in m.configs.iter().enumerate() {
            let o = m.outcome(Technique::DataOnly, i);
            if config.bounds_checks {
                assert!(!o.succeeded());
            } else {
                assert!(o.succeeded(), "data-only blocked by {}", config.label());
            }
        }
    }

    #[test]
    fn info_leak_beats_modern_but_not_shadow_stack() {
        let m = run(42);
        // Column 5 is canary+DEP+ASLR; column 6 adds the shadow stack.
        assert!(m.outcome(Technique::InfoLeak, 5).succeeded());
        assert!(!m.outcome(Technique::InfoLeak, 6).succeeded());
    }

    #[test]
    fn table_renders_with_all_columns() {
        let m = run(42);
        let t = m.table();
        assert_eq!(t.headers.len(), 9);
        assert_eq!(t.rows.len(), 7);
    }
}
