//! Deterministic fault injection for the campaign failure model.
//!
//! Two things live here:
//!
//! * [`FaultPlan`] — a seed-derived recipe for *where* to inject
//!   faults: which crash point to hit during a continuity save, which
//!   bit of a sealed blob or VM data page to flip. Every choice is a
//!   pure function of the plan seed and a derivation path, so the E16
//!   crash-matrix experiment is byte-identical at any worker count and
//!   reproducible from the campaign master seed alone.
//! * [`FaultyExperiment`] — a test-only experiment (reserved id
//!   [`ExperimentId::FAULT_DEMO`], never registered) whose cells
//!   panic, stall and flake **on purpose**, to exercise the runner's
//!   fault tolerance end to end: `catch_unwind` containment, the
//!   per-cell deadline watchdog, and bounded retry.
//!
//! The line between the two: `FaultPlan` injects faults into the
//! *system under test* (the continuity protocol, sealed storage, VM
//! memory); `FaultyExperiment` injects faults into the *harness
//! itself*.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use swsec_pma::CrashPoint;
use swsec_rng::{derive, Rng, SplitMix64};

use crate::campaign::{CampaignConfig, CampaignCtx};
use crate::experiments::Experiment;
use crate::report::{ExperimentId, Report, Table};

/// Every [`CrashPoint`], in the fixed order the E16 crash matrix
/// enumerates them.
pub const CRASH_POINTS: [CrashPoint; 4] = [
    CrashPoint::None,
    CrashPoint::BeforeStore,
    CrashPoint::AfterStore,
    CrashPoint::AfterBump,
];

/// Human-readable label for a crash point, used in report rows.
pub fn crash_point_label(p: CrashPoint) -> &'static str {
    match p {
        CrashPoint::None => "none",
        CrashPoint::BeforeStore => "before-store",
        CrashPoint::AfterStore => "after-store",
        CrashPoint::AfterBump => "after-bump",
    }
}

/// A seed-derived fault-injection recipe.
///
/// Every method is a pure function of `(plan seed, path)` — same
/// inputs, same fault — so experiments that consume a plan stay
/// deterministic under the campaign's any-worker-count contract.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// A plan rooted at `seed` (typically a
    /// [`CampaignConfig::cell_seed`] so each cell injects independent
    /// faults).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    fn rng(&self, path: &[u64]) -> SplitMix64 {
        SplitMix64::new(derive(self.seed, path))
    }

    /// The `(byte, bit)` to flip for `path`. The byte is an unreduced
    /// draw — callers (or [`FaultPlan::flip_blob_bit`]) reduce it
    /// modulo the target length.
    pub fn bit_fault(&self, path: &[u64]) -> (usize, u8) {
        let mut rng = self.rng(path);
        let byte = rng.next_u64() as usize;
        let bit = (rng.next_u64() % 8) as u8;
        (byte, bit)
    }

    /// Flips one plan-chosen bit of `buf`; returns the `(byte, bit)`
    /// actually flipped, or `None` for an empty buffer.
    pub fn flip_blob_bit(&self, buf: &mut [u8], path: &[u64]) -> Option<(usize, u8)> {
        if buf.is_empty() {
            return None;
        }
        let (byte, bit) = self.bit_fault(path);
        let byte = byte % buf.len();
        buf[byte] ^= 1 << bit;
        Some((byte, bit))
    }

    /// Deterministic 32-byte key material for `path` (platform roots,
    /// module keys, sealing keys).
    pub fn key_bytes(&self, path: &[u64]) -> [u8; 32] {
        let mut rng = self.rng(path);
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        key
    }

    /// Fills `buf` with deterministic bytes for `path` (data-page
    /// contents, state payloads).
    pub fn fill(&self, buf: &mut [u8], path: &[u64]) {
        self.rng(path).fill_bytes(buf);
    }
}

/// The test-only fault-demo experiment: four cells that exercise every
/// [`CellOutcome`](crate::campaign::CellOutcome) variant.
///
/// | cell | behaviour | expected outcome |
/// |---|---|---|
/// | [`PANIC_CELL`](FaultyExperiment::PANIC_CELL) | panics on every attempt | `Panicked` |
/// | [`STALL_CELL`](FaultyExperiment::STALL_CELL) | sleeps ~2 s in short slices | `TimedOut` under a short deadline, `Ok` otherwise |
/// | [`OK_CELL`](FaultyExperiment::OK_CELL) | returns immediately | `Ok` |
/// | [`FLAKY_CELL`](FaultyExperiment::FLAKY_CELL) | panics on its first attempt only | `Retried { n: 1 }` when retries are enabled |
///
/// The flaky cell deliberately violates the `run_cell` purity contract
/// (it keeps per-instance attempt state) — that is the point: a pure
/// cell can never succeed on retry. Use [`FaultyExperiment::fresh`]
/// to get an independent instance per campaign run so two runs see the
/// same first-attempt/second-attempt sequence.
///
/// It is **not** in [`crate::experiments::registry`]: its id is the
/// reserved [`ExperimentId::FAULT_DEMO`], and it only enters a
/// campaign through
/// [`run_campaign_on`](crate::campaign::run_campaign_on).
pub struct FaultyExperiment {
    attempts: AtomicU32,
}

impl FaultyExperiment {
    /// The cell that panics on every attempt.
    pub const PANIC_CELL: usize = 0;
    /// The cell that stalls for ~2 s (bounded, so a leaked watchdogged
    /// thread exits on its own rather than spinning forever).
    pub const STALL_CELL: usize = 1;
    /// The cell that succeeds immediately.
    pub const OK_CELL: usize = 2;
    /// The cell that panics once, then succeeds.
    pub const FLAKY_CELL: usize = 3;

    /// How long [`STALL_CELL`](FaultyExperiment::STALL_CELL) runs.
    /// Deadlines meant to trip it should sit well under this;
    /// deadlines meant to pass it, well over.
    pub const STALL: Duration = Duration::from_secs(2);

    /// A fresh instance with untouched attempt state, leaked to the
    /// `'static` lifetime the campaign runner requires. One instance
    /// per campaign run keeps runs comparable (the flaky cell fails on
    /// exactly the first attempt of each run). The leak is a few bytes
    /// per call and test-only by design.
    pub fn fresh() -> &'static FaultyExperiment {
        Box::leak(Box::new(FaultyExperiment {
            attempts: AtomicU32::new(0),
        }))
    }

    fn cell_table(cell: usize, note: &str) -> Vec<Table> {
        let mut t = Table::new("fault-demo cell", &["cell", "note"]);
        t.row(vec![cell.to_string(), note.to_string()]);
        vec![t]
    }
}

impl Experiment for FaultyExperiment {
    fn id(&self) -> ExperimentId {
        ExperimentId::FAULT_DEMO
    }

    fn title(&self) -> &'static str {
        "Fault demo — cells that panic, stall and flake"
    }

    fn cells(&self, _cfg: &CampaignConfig) -> usize {
        4
    }

    fn run_cell(&self, _cfg: &CampaignConfig, _ctx: &CampaignCtx, cell: usize) -> Vec<Table> {
        match cell {
            FaultyExperiment::PANIC_CELL => panic!("injected cell panic (fault demo)"),
            FaultyExperiment::STALL_CELL => {
                // Sleep in slices: if the watchdog gave up on us and
                // leaked the thread, it still terminates shortly.
                let start = Instant::now();
                while start.elapsed() < FaultyExperiment::STALL {
                    std::thread::sleep(Duration::from_millis(10));
                }
                FaultyExperiment::cell_table(cell, "stall finished")
            }
            FaultyExperiment::OK_CELL => FaultyExperiment::cell_table(cell, "ok"),
            FaultyExperiment::FLAKY_CELL => {
                if self.attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected flaky failure (first attempt)");
                }
                FaultyExperiment::cell_table(cell, "ok after retry")
            }
            other => unreachable!("fault demo has 4 cells, got {other}"),
        }
    }

    fn assemble(&self, _cfg: &CampaignConfig, cells: Vec<Vec<Table>>) -> Report {
        let mut report = Report::new(self.id(), self.title());
        report.tables = cells.into_iter().flatten().collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_path_sensitive() {
        let plan = FaultPlan::new(0xFEED);
        assert_eq!(plan.bit_fault(&[1, 2]), plan.bit_fault(&[1, 2]));
        assert_ne!(plan.bit_fault(&[1, 2]), plan.bit_fault(&[2, 1]));
        assert_ne!(
            FaultPlan::new(1).key_bytes(&[0]),
            FaultPlan::new(2).key_bytes(&[0])
        );
    }

    #[test]
    fn blob_flip_changes_exactly_one_bit() {
        let plan = FaultPlan::new(7);
        let mut buf = vec![0u8; 64];
        let (byte, bit) = plan.flip_blob_bit(&mut buf, &[3]).expect("non-empty");
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(buf[byte], 1 << bit);
        assert_eq!(plan.flip_blob_bit(&mut [], &[3]), None);
    }

    #[test]
    fn fill_is_reproducible() {
        let plan = FaultPlan::new(42);
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        plan.fill(&mut a, &[9]);
        plan.fill(&mut b, &[9]);
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 16]);
    }

    #[test]
    fn faulty_experiment_cells_behave_as_labelled() {
        let exp = FaultyExperiment::fresh();
        let cfg = CampaignConfig::default();
        let ctx = CampaignCtx::new();
        // OK cell succeeds.
        let t = exp.run_cell(&cfg, &ctx, FaultyExperiment::OK_CELL);
        assert_eq!(t[0].rows[0][1], "ok");
        // Flaky cell: first attempt panics, second succeeds.
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exp.run_cell(&cfg, &ctx, FaultyExperiment::FLAKY_CELL)
        }));
        assert!(first.is_err());
        let second = exp.run_cell(&cfg, &ctx, FaultyExperiment::FLAKY_CELL);
        assert_eq!(second[0].rows[0][1], "ok after retry");
        // Panic cell always panics.
        let p = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exp.run_cell(&cfg, &ctx, FaultyExperiment::PANIC_CELL)
        }));
        assert!(p.is_err());
    }
}
