//! The observational-equivalence harness: the paper's security
//! objective, made checkable.
//!
//! *"The compiled system should behave as specified in the source code
//! that it is compiled from (and only as specified in the source
//! code)."*
//!
//! The reference interpreter of `swsec-minc` defines what the source
//! specifies: observable I/O plus the exit code, with memory-safety
//! violations as defined traps. This module runs the same program with
//! the same input both ways and classifies the relationship:
//!
//! * [`Verdict::Equivalent`] — the machine behaved exactly as the
//!   source specifies;
//! * [`Verdict::SafeDivergence`] — the machine stopped early (fault,
//!   defensive trap) without producing any observation the source
//!   cannot produce: a countermeasure or a crash, not a compromise;
//! * [`Verdict::Compromised`] — the machine produced observable
//!   behaviour the source cannot produce. This is the formal definition
//!   of a successful low-level attack;
//! * [`Verdict::Inconclusive`] — a fuel limit was hit.

use std::fmt;

use swsec_defenses::DefenseConfig;
use swsec_minc::ast::Unit;
use swsec_minc::interp::{self, InterpOutcome};
use swsec_minc::CompileError;
use swsec_vm::cpu::RunOutcome;

use crate::loader;

/// Classification of a machine run against the source semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Identical observable behaviour.
    Equivalent,
    /// The machine stopped without out-of-spec observations.
    SafeDivergence {
        /// Why the machine stopped (fault or trap description).
        cause: String,
    },
    /// The machine exhibited behaviour the source cannot produce.
    Compromised {
        /// What was observed that the source cannot produce.
        evidence: String,
    },
    /// Fuel ran out on one side; no judgement.
    Inconclusive,
}

impl Verdict {
    /// Whether this verdict certifies the security objective held.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Equivalent | Verdict::SafeDivergence { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Equivalent => write!(f, "equivalent"),
            Verdict::SafeDivergence { cause } => write!(f, "safe divergence ({cause})"),
            Verdict::Compromised { evidence } => write!(f, "COMPROMISED ({evidence})"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
        }
    }
}

/// Everything observed in one comparison run.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The verdict.
    pub verdict: Verdict,
    /// Reference (source-semantics) observable output.
    pub reference_io: Vec<(u32, Vec<u8>)>,
    /// Machine observable output.
    pub machine_io: Vec<(u32, Vec<u8>)>,
    /// How the reference run ended.
    pub reference_outcome: InterpOutcome,
    /// How the machine run ended.
    pub machine_outcome: RunOutcome,
}

fn io_is_prefix(shorter: &[(u32, Vec<u8>)], longer: &[(u32, Vec<u8>)]) -> bool {
    // Every channel in `shorter` must be a prefix of the same channel in
    // `longer`; `longer` may have more channels/bytes.
    for (fd, bytes) in shorter {
        let other = longer
            .iter()
            .find(|(ofd, _)| ofd == fd)
            .map(|(_, b)| b.as_slice())
            .unwrap_or(&[]);
        if !other.starts_with(bytes) {
            return false;
        }
    }
    true
}

/// Compares a machine run under `config` against the source semantics
/// on the same `input` (fed to channel 0).
///
/// # Errors
///
/// Returns a [`CompileError`] when the program cannot be compiled or
/// loaded.
pub fn compare(
    unit: &Unit,
    input: &[u8],
    config: DefenseConfig,
    seed: u64,
    fuel: u64,
) -> Result<Comparison, CompileError> {
    let reference = interp::run(unit, &[(0, input.to_vec())], fuel);
    let mut session = loader::launch(unit, config, seed)?;
    session.machine.io_mut().feed_input(0, input);
    let machine_outcome = session.run(fuel);
    let machine_io = session.machine.io().observable();

    let verdict = classify(&reference.outcome, &reference.io, &machine_outcome, &machine_io);
    Ok(Comparison {
        verdict,
        reference_io: reference.io,
        machine_io,
        reference_outcome: reference.outcome,
        machine_outcome,
    })
}

/// Classifies a machine observation (outcome + observable I/O) against
/// a reference-interpreter observation of the same program and input.
///
/// This is exactly the judgement [`compare`] applies; it is public so
/// harnesses that must run the two sides themselves — e.g. the fuzzer's
/// compiler-conformance target, which attaches a coverage sink to the
/// machine before running — reuse the same semantics instead of
/// approximating them.
pub fn classify_observations(
    ref_outcome: &InterpOutcome,
    ref_io: &[(u32, Vec<u8>)],
    vm_outcome: &RunOutcome,
    vm_io: &[(u32, Vec<u8>)],
) -> Verdict {
    classify(ref_outcome, ref_io, vm_outcome, vm_io)
}

fn classify(
    ref_outcome: &InterpOutcome,
    ref_io: &[(u32, Vec<u8>)],
    vm_outcome: &RunOutcome,
    vm_io: &[(u32, Vec<u8>)],
) -> Verdict {
    if matches!(ref_outcome, InterpOutcome::OutOfFuel)
        || matches!(vm_outcome, RunOutcome::OutOfFuel)
    {
        return Verdict::Inconclusive;
    }
    if matches!(vm_outcome, RunOutcome::Blocked { .. }) {
        // Blocking reads are only used by interactive attack drivers,
        // never by the equivalence harness.
        return Verdict::Inconclusive;
    }
    match (ref_outcome, vm_outcome) {
        (InterpOutcome::Exit(ref_code), RunOutcome::Halted(vm_code)) => {
            if *vm_code == *ref_code as u32 && vm_io == ref_io {
                Verdict::Equivalent
            } else if vm_io == ref_io {
                Verdict::Compromised {
                    evidence: format!(
                        "exit code {vm_code:#x} differs from specified {:#x}",
                        *ref_code as u32
                    ),
                }
            } else {
                Verdict::Compromised {
                    evidence: "output differs from the source specification".into(),
                }
            }
        }
        (InterpOutcome::Exit(_), RunOutcome::Fault(fault)) => {
            if io_is_prefix(vm_io, ref_io) {
                Verdict::SafeDivergence {
                    cause: fault.to_string(),
                }
            } else {
                Verdict::Compromised {
                    evidence: format!("extra output before fault ({fault})"),
                }
            }
        }
        (InterpOutcome::Trap(violation), vm) => {
            // The source traps here; machine behaviour past the trap
            // point is acceptable only while it stays within what was
            // already specified (the output produced before the trap).
            match vm {
                RunOutcome::Halted(_code) => {
                    if io_is_prefix(vm_io, ref_io) {
                        Verdict::SafeDivergence {
                            cause: format!("source traps ({violation}); machine exited quietly"),
                        }
                    } else {
                        Verdict::Compromised {
                            evidence: format!(
                                "machine continued past a source-level trap ({violation}) and produced new output"
                            ),
                        }
                    }
                }
                RunOutcome::Fault(fault) => {
                    if io_is_prefix(vm_io, ref_io) {
                        Verdict::SafeDivergence {
                            cause: format!("{fault} at a source-level trap point"),
                        }
                    } else {
                        Verdict::Compromised {
                            evidence: format!("extra output before fault ({fault})"),
                        }
                    }
                }
                RunOutcome::OutOfFuel | RunOutcome::Blocked { .. } => Verdict::Inconclusive,
            }
        }
        (InterpOutcome::OutOfFuel, _)
        | (_, RunOutcome::OutOfFuel)
        | (_, RunOutcome::Blocked { .. }) => Verdict::Inconclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swsec_minc::parse;

    const SAFE_ECHO: &str =
        "void main() { char buf[16]; int n = read(0, buf, 16); write(1, buf, n); }";
    const VULN_ECHO: &str =
        "void main() { char buf[16]; int n = read(0, buf, 64); write(1, buf, 2); }";

    fn verdict(src: &str, input: &[u8], config: DefenseConfig) -> Verdict {
        compare(&parse(src).unwrap(), input, config, 7, 1_000_000)
            .unwrap()
            .verdict
    }

    #[test]
    fn safe_program_is_equivalent() {
        assert_eq!(
            verdict(SAFE_ECHO, b"hello", DefenseConfig::none()),
            Verdict::Equivalent
        );
    }

    #[test]
    fn benign_input_to_vulnerable_program_is_equivalent() {
        assert_eq!(
            verdict(VULN_ECHO, b"hi", DefenseConfig::none()),
            Verdict::Equivalent
        );
    }

    #[test]
    fn overflow_with_output_past_the_trap_point_is_compromised() {
        // 64 junk bytes smash the frame; the machine then *emits output*
        // at a point where the source semantics already trapped — an
        // observable deviation, i.e. a compromise (even though the junk
        // return address crashes shortly after).
        let input = vec![0xEE; 64];
        let v = verdict(VULN_ECHO, &input, DefenseConfig::none());
        assert!(matches!(v, Verdict::Compromised { .. }), "{v}");
    }

    #[test]
    fn silent_overflow_crash_is_safe_divergence() {
        // Same smash against a victim that produces no output after the
        // overflow: the wild return faults without any out-of-spec
        // observation — a crash, not a compromise.
        let quiet = "void main() { char buf[16]; read(0, buf, 64); }";
        let input = vec![0xEE; 64];
        let v = verdict(quiet, &input, DefenseConfig::none());
        assert!(matches!(v, Verdict::SafeDivergence { .. }), "{v}");
    }

    #[test]
    fn exit_code_hijack_is_compromised() {
        // Overflow the return address with the address of the `exit`
        // path… simplest observable hijack: make the machine exit with a
        // code the source cannot produce by smashing the return address
        // to land on `_start`'s exit with r0 = garbage. We emulate the
        // effect deterministically with shellcode-free data: provide a
        // payload that redirects the return into main's `sys exit` with
        // a corrupted r0 (r0 = bytes read = 64, not the source's 0).
        // Rather than hand-crafting here, this behaviour is exercised in
        // the attack-technique tests; what this test pins down is the
        // classifier: a differing exit code is Compromised.
        let v = classify(
            &InterpOutcome::Exit(0),
            &[],
            &RunOutcome::Halted(0x1337),
            &[],
        );
        assert!(matches!(v, Verdict::Compromised { .. }));
    }

    #[test]
    fn extra_output_is_compromised() {
        let v = classify(
            &InterpOutcome::Exit(0),
            &[(1, b"OK".to_vec())],
            &RunOutcome::Halted(0),
            &[(1, b"OK PWNED".to_vec())],
        );
        assert!(matches!(v, Verdict::Compromised { .. }));
    }

    #[test]
    fn prefix_output_before_fault_is_safe() {
        let v = classify(
            &InterpOutcome::Exit(0),
            &[(1, b"hello".to_vec())],
            &RunOutcome::Fault(swsec_vm::cpu::Fault::DivideByZero { ip: 0 }),
            &[(1, b"he".to_vec())],
        );
        assert!(matches!(v, Verdict::SafeDivergence { .. }));
    }

    #[test]
    fn source_trap_with_quiet_machine_is_safe() {
        let v = classify(
            &InterpOutcome::Trap(swsec_minc::SafetyViolation {
                message: "spatial".into(),
            }),
            &[],
            &RunOutcome::Halted(0),
            &[],
        );
        assert!(matches!(v, Verdict::SafeDivergence { .. }));
    }

    #[test]
    fn source_trap_with_new_output_is_compromised() {
        let v = classify(
            &InterpOutcome::Trap(swsec_minc::SafetyViolation {
                message: "spatial".into(),
            }),
            &[],
            &RunOutcome::Halted(0),
            &[(1, b"PWNED".to_vec())],
        );
        assert!(matches!(v, Verdict::Compromised { .. }));
    }

    #[test]
    fn fuel_exhaustion_is_inconclusive() {
        let v = classify(&InterpOutcome::Exit(0), &[], &RunOutcome::OutOfFuel, &[]);
        assert_eq!(v, Verdict::Inconclusive);
    }

    #[test]
    fn holds_semantics() {
        assert!(Verdict::Equivalent.holds());
        assert!(Verdict::SafeDivergence { cause: "x".into() }.holds());
        assert!(!Verdict::Compromised { evidence: "x".into() }.holds());
    }

    #[test]
    fn hardened_run_of_safe_program_stays_equivalent() {
        assert_eq!(
            verdict(SAFE_ECHO, b"hello", DefenseConfig::modern(8)),
            Verdict::Equivalent
        );
    }
}
