//! Compilation memoization for campaign-scale workloads.
//!
//! Every experiment compiles MinC victims, often the *same* victim
//! under the *same* options thousands of times — the E3 matrix reuses
//! each victim across configurations, the E4 ASLR sweep relaunches one
//! victim per brute-force attempt, and E14 fires thousands of oracle
//! queries at a single program. [`ProgramCache`] makes every distinct
//! `(source, CompileOptions)` pair compile exactly once; everything
//! after the first compile is an `Arc` clone.
//!
//! The hardening configuration is part of [`CompileOptions`] and hence
//! of the cache key, so a canary build and a bounds-checked build of
//! the same source never alias. Likewise the (possibly ASLR-slid)
//! layout: two launches that happen to draw the same slide share an
//! image, two different slides do not.
//!
//! The cache is sharded by key hash and safe to share across the
//! campaign worker pool by reference.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use swsec_defenses::DefenseConfig;
use swsec_minc::{compile, CompileError, CompileOptions, CompiledProgram, Program};

use crate::loader::{self, Session};

const SHARDS: usize = 16;

/// Cache counters (monotonic; never reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Sources parsed (front-end cache misses).
    pub parses: u64,
}

impl CacheStats {
    /// Total compile requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

type ProgramKey = (String, CompileOptions);

/// A concurrent memo table from `(source, options)` to compiled
/// images, plus a front-end memo from source text to parsed [`Program`]s.
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: [Mutex<HashMap<ProgramKey, Arc<CompiledProgram>>>; SHARDS],
    units: Mutex<HashMap<String, Arc<Program>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    parses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    fn shard(key: &ProgramKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// The parsed AST for `source`, memoized.
    ///
    /// # Errors
    ///
    /// Returns the front-end error when `source` does not parse (the
    /// failure itself is not cached).
    pub fn unit(&self, source: &str) -> Result<Arc<Program>, CompileError> {
        if let Some(unit) = self.units.lock().expect("cache lock").get(source) {
            return Ok(Arc::clone(unit));
        }
        let unit = swsec_minc::parse(source).map_err(|e| CompileError {
            message: format!("parse error: {e:?}"),
        })?;
        self.parses.fetch_add(1, Ordering::Relaxed);
        let unit = Arc::new(unit);
        self.units
            .lock()
            .expect("cache lock")
            .entry(source.to_string())
            .or_insert_with(|| Arc::clone(&unit));
        Ok(unit)
    }

    /// The compiled image of `source` under `opts`, memoized.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] from the front end or the code
    /// generator; failures are not cached.
    pub fn compile(
        &self,
        source: &str,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        // The span covers the memoized lookup, not just the miss path:
        // which worker loses the compile race is scheduling-dependent,
        // and span trees must be identical at any worker count.
        let _compile = swsec_obs::span::enter_with(swsec_obs::SpanKind::Compile, || {
            format!("{} bytes", source.len())
        });
        let key = (source.to_string(), opts.clone());
        let shard = &self.programs[Self::shard(&key)];
        if let Some(program) = shard.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(program));
        }
        // Compile outside the shard lock so a slow compile does not
        // serialize the pool; a concurrent duplicate just loses the
        // insert race (the counters still record it as a miss).
        let unit = self.unit(source)?;
        let program = Arc::new(compile(&unit, opts)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&program));
        Ok(Arc::clone(entry))
    }

    /// Compile-and-launch through the cache: the cached analogue of
    /// [`loader::launch`], yielding a bit-identical [`Session`].
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when compilation or loading fails.
    pub fn launch(
        &self,
        source: &str,
        config: DefenseConfig,
        seed: u64,
    ) -> Result<Session, CompileError> {
        let opts = loader::plan_options(&config, seed);
        let program = self.compile(source, &opts)?;
        loader::launch_compiled(&program, config, seed)
    }

    /// Clears the memo tables (counters are kept).
    pub fn clear(&self) {
        for shard in &self.programs {
            shard.lock().expect("cache lock").clear();
        }
        self.units.lock().expect("cache lock").clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            parses: self.parses.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide cache behind the seed-free convenience entry
/// points ([`crate::attacker::run_technique`] and the examples).
/// Compilation is pure, so sharing across callers is safe; campaign
/// runs use their own per-campaign cache instead so the hit counters
/// stay attributable.
pub fn global() -> &'static ProgramCache {
    static GLOBAL: std::sync::OnceLock<ProgramCache> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(ProgramCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECHO: &str = "void main() { char buf[8]; int n = read(0, buf, 8); write(1, buf, n); }";

    #[test]
    fn identical_requests_compile_once() {
        let cache = ProgramCache::new();
        let opts = CompileOptions::default();
        let a = cache.compile(ECHO, &opts).unwrap();
        let b = cache.compile(ECHO, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.parses), (1, 1, 1));
    }

    #[test]
    fn hardening_is_part_of_the_key() {
        let cache = ProgramCache::new();
        let plain = CompileOptions::default();
        let mut hardened = CompileOptions::default();
        hardened.harden.stack_canary = true;
        let a = cache.compile(ECHO, &plain).unwrap();
        let b = cache.compile(ECHO, &hardened).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // …but the parse was shared.
        assert_eq!(cache.stats().parses, 1);
    }

    #[test]
    fn cached_launch_matches_uncached_launch() {
        let cache = ProgramCache::new();
        let mut config = DefenseConfig::none();
        config.canary = true;
        config.aslr_bits = Some(4);
        let unit = swsec_minc::parse(ECHO).unwrap();
        for seed in [1, 2, 99] {
            let direct = loader::launch(&unit, config, seed).unwrap();
            let cached = cache.launch(ECHO, config, seed).unwrap();
            assert_eq!(direct.canary_value, cached.canary_value, "seed {seed}");
            assert_eq!(direct.program.layout, cached.program.layout, "seed {seed}");
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let cache = ProgramCache::new();
        assert!(cache.compile("int main( {", &CompileOptions::default()).is_err());
    }
}
