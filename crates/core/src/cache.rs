//! Compilation memoization for campaign-scale workloads.
//!
//! Every experiment compiles MinC victims, often the *same* victim
//! under the *same* options thousands of times — the E3 matrix reuses
//! each victim across configurations, the E4 ASLR sweep relaunches one
//! victim per brute-force attempt, and E14 fires thousands of oracle
//! queries at a single program. [`ProgramCache`] makes every distinct
//! `(source, CompileOptions)` pair compile exactly once; everything
//! after the first compile is an `Arc` clone.
//!
//! The hardening configuration is part of [`CompileOptions`] and hence
//! of the cache key, so a canary build and a bounds-checked build of
//! the same source never alias. Likewise the (possibly ASLR-slid)
//! layout: two launches that happen to draw the same slide share an
//! image, two different slides do not.
//!
//! The cache is sharded by key hash and safe to share across the
//! campaign worker pool by reference.
//!
//! ## Bounded mode
//!
//! A batch campaign compiles a finite victim set and exits, so the
//! default cache is unbounded. A long-lived service does not exit, and
//! ASLR makes the key space effectively infinite (every distinct slide
//! is a distinct `CompileOptions`): an unbounded memo would grow until
//! the process dies. [`ProgramCache::bounded`] caps the table and
//! evicts by generation clock — every hit stamps the entry with a
//! fresh tick from a global counter, and an over-capacity insert
//! removes the stalest entry in its shard (LRU, approximated per
//! shard). Evictions are counted and surfaced as the
//! `cache.evictions` metric.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use swsec_defenses::DefenseConfig;
use swsec_minc::{compile, CompileError, CompileOptions, CompiledProgram, Program};

use crate::loader::{self, Session};

const SHARDS: usize = 16;

/// Cache counters (monotonic; never reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Sources parsed (front-end cache misses).
    pub parses: u64,
    /// Entries evicted to stay under a bounded cache's capacity
    /// (always `0` for unbounded caches).
    pub evictions: u64,
}

impl CacheStats {
    /// Total compile requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

type ProgramKey = (String, CompileOptions);

/// A cached compile artifact plus its last-use tick (only meaningful
/// in bounded mode; unbounded caches never read it).
#[derive(Debug)]
struct Cached<T> {
    value: Arc<T>,
    last_use: u64,
}

/// A concurrent memo table from `(source, options)` to compiled
/// images, plus a front-end memo from source text to parsed [`Program`]s.
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: [Mutex<HashMap<ProgramKey, Cached<CompiledProgram>>>; SHARDS],
    units: Mutex<HashMap<String, Cached<Program>>>,
    /// Maximum compiled images held across all shards; `None` is
    /// unbounded (the batch-campaign default).
    capacity: Option<usize>,
    /// Generation clock stamping entry use; strictly coarser than the
    /// use order under contention, which only blurs *which* cold entry
    /// is evicted, never whether capacity holds.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    parses: AtomicU64,
    evictions: AtomicU64,
}

impl ProgramCache {
    /// An empty, unbounded cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// An empty cache holding at most `capacity` compiled images (and
    /// at most `capacity` parsed units), evicting least-recently-used
    /// entries past that. A zero capacity is treated as `1`.
    pub fn bounded(capacity: usize) -> ProgramCache {
        ProgramCache {
            capacity: Some(capacity.max(1)),
            ..ProgramCache::default()
        }
    }

    /// The compiled-image capacity, if this cache is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn shard(key: &ProgramKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Evicts stalest entries from one (locked) table until it holds
    /// at most `cap` entries. O(n) scans per eviction: bounded caches
    /// are small by construction, and eviction rides the already-slow
    /// compile path.
    fn evict_to<K: Eq + Hash + Clone, T>(
        &self,
        map: &mut HashMap<K, Cached<T>>,
        cap: usize,
    ) {
        while map.len() > cap {
            let Some(stalest) = map
                .iter()
                .min_by_key(|(_, cached)| cached.last_use)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            map.remove(&stalest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-shard share of the program capacity. Ceil so the shard caps
    /// never sum below the requested total.
    fn shard_cap(&self) -> Option<usize> {
        self.capacity.map(|cap| cap.div_ceil(SHARDS).max(1))
    }

    /// The parsed AST for `source`, memoized.
    ///
    /// # Errors
    ///
    /// Returns the front-end error when `source` does not parse (the
    /// failure itself is not cached).
    pub fn unit(&self, source: &str) -> Result<Arc<Program>, CompileError> {
        if let Some(unit) = self.units.lock().expect("cache lock").get_mut(source) {
            unit.last_use = self.tick();
            return Ok(Arc::clone(&unit.value));
        }
        let unit = swsec_minc::parse(source).map_err(|e| CompileError {
            message: format!("parse error: {e:?}"),
        })?;
        self.parses.fetch_add(1, Ordering::Relaxed);
        let unit = Arc::new(unit);
        let last_use = self.tick();
        let mut map = self.units.lock().expect("cache lock");
        map.entry(source.to_string()).or_insert_with(|| Cached {
            value: Arc::clone(&unit),
            last_use,
        });
        if let Some(cap) = self.capacity {
            self.evict_to(&mut map, cap.max(1));
        }
        Ok(unit)
    }

    /// The compiled image of `source` under `opts`, memoized.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] from the front end or the code
    /// generator; failures are not cached.
    pub fn compile(
        &self,
        source: &str,
        opts: &CompileOptions,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        // The span covers the memoized lookup, not just the miss path:
        // which worker loses the compile race is scheduling-dependent,
        // and span trees must be identical at any worker count.
        let _compile = swsec_obs::span::enter_with(swsec_obs::SpanKind::Compile, || {
            format!("{} bytes", source.len())
        });
        let key = (source.to_string(), opts.clone());
        let shard = &self.programs[Self::shard(&key)];
        if let Some(cached) = shard.lock().expect("cache lock").get_mut(&key) {
            cached.last_use = self.tick();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&cached.value));
        }
        // Compile outside the shard lock so a slow compile does not
        // serialize the pool; a concurrent duplicate just loses the
        // insert race (the counters still record it as a miss).
        let unit = self.unit(source)?;
        let program = Arc::new(compile(&unit, opts)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let last_use = self.tick();
        let mut map = shard.lock().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| Cached {
            value: Arc::clone(&program),
            last_use,
        });
        let result = Arc::clone(&entry.value);
        if let Some(cap) = self.shard_cap() {
            self.evict_to(&mut map, cap);
        }
        Ok(result)
    }

    /// Compile-and-launch through the cache: the cached analogue of
    /// [`loader::launch`], yielding a bit-identical [`Session`].
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when compilation or loading fails.
    pub fn launch(
        &self,
        source: &str,
        config: DefenseConfig,
        seed: u64,
    ) -> Result<Session, CompileError> {
        let opts = loader::plan_options(&config, seed);
        let program = self.compile(source, &opts)?;
        loader::launch_compiled(&program, config, seed)
    }

    /// Clears the memo tables (counters are kept; clearing is not
    /// eviction).
    pub fn clear(&self) {
        for shard in &self.programs {
            shard.lock().expect("cache lock").clear();
        }
        self.units.lock().expect("cache lock").clear();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            parses: self.parses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide cache behind the seed-free convenience entry
/// points ([`crate::attacker::run_technique`] and the examples).
/// Compilation is pure, so sharing across callers is safe; campaign
/// runs use their own per-campaign cache instead so the hit counters
/// stay attributable.
pub fn global() -> &'static ProgramCache {
    static GLOBAL: std::sync::OnceLock<ProgramCache> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(ProgramCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECHO: &str = "void main() { char buf[8]; int n = read(0, buf, 8); write(1, buf, n); }";

    #[test]
    fn identical_requests_compile_once() {
        let cache = ProgramCache::new();
        let opts = CompileOptions::default();
        let a = cache.compile(ECHO, &opts).unwrap();
        let b = cache.compile(ECHO, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.parses), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn hardening_is_part_of_the_key() {
        let cache = ProgramCache::new();
        let plain = CompileOptions::default();
        let mut hardened = CompileOptions::default();
        hardened.harden.stack_canary = true;
        let a = cache.compile(ECHO, &plain).unwrap();
        let b = cache.compile(ECHO, &hardened).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        // …but the parse was shared.
        assert_eq!(cache.stats().parses, 1);
    }

    #[test]
    fn cached_launch_matches_uncached_launch() {
        let cache = ProgramCache::new();
        let mut config = DefenseConfig::none();
        config.canary = true;
        config.aslr_bits = Some(4);
        let unit = swsec_minc::parse(ECHO).unwrap();
        for seed in [1, 2, 99] {
            let direct = loader::launch(&unit, config, seed).unwrap();
            let cached = cache.launch(ECHO, config, seed).unwrap();
            assert_eq!(direct.canary_value, cached.canary_value, "seed {seed}");
            assert_eq!(direct.program.layout, cached.program.layout, "seed {seed}");
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let cache = ProgramCache::new();
        assert!(cache.compile("int main( {", &CompileOptions::default()).is_err());
    }

    #[test]
    fn bounded_cache_evicts_and_counts() {
        // Capacity 1: with 16 shards the per-shard cap is 1, so two
        // distinct keys landing in the same shard force an eviction.
        // Distinct ASLR slides of one source guarantee same-shard
        // pressure eventually; drive enough keys that every shard
        // exceeds its cap.
        let cache = ProgramCache::bounded(1);
        let config = DefenseConfig::modern(8);
        for seed in 0..64u64 {
            let opts = loader::plan_options(&config, seed);
            cache.compile(ECHO, &opts).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "no evictions at capacity 1: {stats:?}");
        let held: usize = cache
            .programs
            .iter()
            .map(|shard| shard.lock().unwrap().len())
            .sum();
        assert!(held <= SHARDS, "held {held} images over per-shard caps");
        // The parsed-unit memo is capped too.
        assert!(cache.units.lock().unwrap().len() <= 1);
    }

    #[test]
    fn bounded_cache_keeps_the_hot_entry() {
        // Capacity 32 = per-shard cap 2: a shard can hold the hot
        // entry plus one cold one, so eviction has a genuine LRU
        // choice to make (at cap 1 any insert evicts the only
        // neighbour regardless of recency).
        let cache = ProgramCache::bounded(32);
        let hot = CompileOptions::default();
        let first = cache.compile(ECHO, &hot).unwrap();
        let config = DefenseConfig::modern(8);
        for seed in 0..64u64 {
            // Re-touch the hot entry between cold inserts: LRU must
            // keep serving it from cache while the colds churn.
            let opts = loader::plan_options(&config, seed);
            cache.compile(ECHO, &opts).unwrap();
            let again = cache.compile(ECHO, &hot).unwrap();
            assert!(
                Arc::ptr_eq(&first, &again),
                "hot entry evicted at seed {seed}"
            );
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = ProgramCache::new();
        let config = DefenseConfig::modern(8);
        for seed in 0..64u64 {
            let opts = loader::plan_options(&config, seed);
            cache.compile(ECHO, &opts).unwrap();
        }
        assert_eq!(cache.stats().evictions, 0);
    }
}
