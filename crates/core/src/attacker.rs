//! The I/O attacker: every §III-B attack technique as a runnable
//! procedure against canonical vulnerable victims.
//!
//! Each technique follows the real attack workflow: the attacker holds
//! a *local copy* of the victim binary (compiled with the same
//! hardening, at the **default** layout), derives addresses and gadget
//! locations from it, crafts an input payload, and fires it at the live
//! victim. Whatever the live victim does is then classified:
//!
//! * the attack *succeeded* if the victim exhibited the attacker's
//!   marker behaviour (printing `SECRET`/`PWNED`, or exiting `0x1337`)
//!   — observable behaviour the source program cannot produce;
//! * it was *blocked* if a countermeasure stopped it (the fault tells
//!   us which one);
//! * it *failed* otherwise (e.g. an ASLR guess landed in the weeds).

use std::fmt;

use std::sync::Arc;

use swsec_attacks::{find_instr_addr, GadgetFinder, Payload, RopChain};
use swsec_defenses::DefenseConfig;
use swsec_minc::{CompileError, CompileOptions, CompiledProgram};
use swsec_vm::cpu::{Fault, RunOutcome};
use swsec_vm::isa::{trap, Instr, Reg};
use swsec_vm::mem::{Access, MemErrorKind};

use crate::cache::ProgramCache;
use crate::loader::{frame_base_for, Session};

/// The §III-B attack techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Stack smashing with direct code injection.
    CodeInjection,
    /// Overwriting a function pointer in the frame.
    CodePointerOverwrite,
    /// Overwriting program code through an unchecked indexed write.
    CodeCorruption,
    /// Return-to-libc: divert the return into an existing function.
    Ret2Libc,
    /// Return-oriented programming over discovered gadgets.
    Rop,
    /// Data-only: corrupt a decision variable, never touching control
    /// flow.
    DataOnly,
    /// Information leak + adaptive second stage (leak the canary and a
    /// return address, then smash precisely).
    InfoLeak,
}

impl Technique {
    /// All techniques, in presentation order.
    pub const ALL: [Technique; 7] = [
        Technique::CodeInjection,
        Technique::CodePointerOverwrite,
        Technique::CodeCorruption,
        Technique::Ret2Libc,
        Technique::Rop,
        Technique::DataOnly,
        Technique::InfoLeak,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Technique::CodeInjection => "code injection",
            Technique::CodePointerOverwrite => "code-ptr overwrite",
            Technique::CodeCorruption => "code corruption",
            Technique::Ret2Libc => "return-to-libc",
            Technique::Rop => "ROP",
            Technique::DataOnly => "data-only",
            Technique::InfoLeak => "info leak + smash",
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How an attack attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The marker behaviour was observed.
    Success {
        /// What was observed.
        evidence: String,
    },
    /// A countermeasure demonstrably stopped the attempt.
    Blocked {
        /// The countermeasure (derived from the fault).
        by: String,
    },
    /// The attempt neither succeeded nor hit a countermeasure (wild
    /// crash from a bad guess, or no effect).
    Failed {
        /// What happened instead.
        reason: String,
    },
}

impl AttackOutcome {
    /// Whether the attack achieved its goal.
    pub fn succeeded(&self) -> bool {
        matches!(self, AttackOutcome::Success { .. })
    }

    /// Table cell for reports.
    pub fn cell(&self) -> String {
        match self {
            AttackOutcome::Success { .. } => "COMPROMISED".to_string(),
            AttackOutcome::Blocked { by } => format!("blocked: {by}"),
            AttackOutcome::Failed { reason } => format!("failed: {reason}"),
        }
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.cell())
    }
}

/// One attack attempt: technique, defense configuration, outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackResult {
    /// The technique attempted.
    pub technique: Technique,
    /// The defenses in force.
    pub config: DefenseConfig,
    /// What happened.
    pub outcome: AttackOutcome,
}

/// Victim for stack smashing, return-to-libc and ROP: the Figure 1
/// server shape with a dormant privileged function (`grant`, the
/// "libc" function) and a constant that plants a `pop r0; ret` gadget
/// in the text — standing in for the unintended gadgets real binaries
/// are full of.
pub const VICTIM_SMASH: &str = "\
void grant() { write(1, \"SECRET\", 6); }\n\
void handle(int fd) {\n\
    int x = 0;\n\
    x = x ^ 0x220009;\n\
    char buf[48];\n\
    read(fd, buf, 96);\n\
    write(1, \"OK\", 2);\n\
}\n\
void main() { handle(0); }\n";

/// Victim for code-pointer overwrite: a function pointer sits in the
/// frame above the overflowable buffer (the paper's sort-comparator
/// example, reduced).
pub const VICTIM_FNPTR: &str = "\
void deny() { write(1, \"DENIED\", 6); }\n\
void grant() { write(1, \"SECRET\", 6); }\n\
void handle(int fd) {\n\
    int (*action)();\n\
    action = deny;\n\
    char buf[16];\n\
    read(fd, buf, 64);\n\
    action();\n\
}\n\
void main() { handle(0); }\n";

/// Victim for code corruption: a `table[i] = v` write where both `i`
/// and `v` come from input — the paper's "entire virtual address
/// space" primitive — plus a guarded branch whose comparison constant
/// the attacker patches.
pub const VICTIM_POKE: &str = "\
char table[64];\n\
int check = 0;\n\
void main() {\n\
    char cmd[8];\n\
    int n = read(0, cmd, 8);\n\
    while (n == 8) {\n\
        int idx = cmd[0] + (cmd[1] << 8) + (cmd[2] << 16) + (cmd[3] << 24);\n\
        table[idx] = cmd[4];\n\
        n = read(0, cmd, 8);\n\
    }\n\
    if (check == 12345) { write(1, \"SECRET\", 6); }\n\
    else { write(1, \"DENIED\", 6); }\n\
}\n";

/// Victim for data-only attacks: the authorization flag lives in the
/// same frame as the buffer; no code pointer is ever touched.
pub const VICTIM_ADMIN: &str = "\
void handle(int fd) {\n\
    int is_admin = 0;\n\
    char buf[16];\n\
    read(fd, buf, 64);\n\
    if (is_admin != 0) { write(1, \"SECRET\", 6); }\n\
    else { write(1, \"DENIED\", 6); }\n\
}\n\
void main() { handle(0); }\n";

/// Victim for the two-stage info-leak attack: request 1 over-reads the
/// frame (Heartbleed-style), request 2 overflows it.
pub const VICTIM_LEAK: &str = "\
void grant() { write(1, \"SECRET\", 6); }\n\
void handle(int fd) {\n\
    char buf[16];\n\
    read(fd, buf, 16);\n\
    write(1, buf, 32);\n\
    read(fd, buf, 64);\n\
    write(1, \"BYE\", 3);\n\
}\n\
void main() { handle(0); }\n";

const MARKER_EXIT: u32 = 0x1337;
const FUEL: u64 = 2_000_000;

/// The attacker's local copy: same sources, same compiler flags,
/// default (unrandomized) layout.
pub(crate) fn attacker_view(
    cache: &ProgramCache,
    source: &str,
    config: DefenseConfig,
) -> Result<Arc<CompiledProgram>, CompileError> {
    let opts = CompileOptions {
        harden: config.harden_options(),
        ..CompileOptions::default()
    };
    cache.compile(source, &opts)
}

fn classify(
    session: &Session,
    outcome: RunOutcome,
    config: DefenseConfig,
    evidence_output: &[u8],
) -> AttackOutcome {
    let out = session.machine.io().output(1);
    if !evidence_output.is_empty()
        && out
            .windows(evidence_output.len())
            .any(|w| w == evidence_output)
    {
        return AttackOutcome::Success {
            evidence: format!(
                "victim emitted {:?}",
                String::from_utf8_lossy(evidence_output)
            ),
        };
    }
    if outcome == RunOutcome::Halted(MARKER_EXIT) {
        return AttackOutcome::Success {
            evidence: format!("victim exited with attacker marker {MARKER_EXIT:#x}"),
        };
    }
    match outcome {
        RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::CANARY => {
            AttackOutcome::Blocked {
                by: "stack canary".into(),
            }
        }
        RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::BOUNDS => {
            AttackOutcome::Blocked {
                by: "bounds checks".into(),
            }
        }
        RunOutcome::Fault(Fault::ShadowStackMismatch { .. })
        | RunOutcome::Fault(Fault::ShadowStackUnderflow { .. }) => AttackOutcome::Blocked {
            by: "shadow stack".into(),
        },
        RunOutcome::Fault(Fault::Mem(e))
            if e.access == Access::Fetch && matches!(e.kind, MemErrorKind::Denied { .. }) =>
        {
            AttackOutcome::Blocked { by: "DEP".into() }
        }
        RunOutcome::Fault(Fault::Mem(e))
            if e.access == Access::Write && matches!(e.kind, MemErrorKind::Denied { .. }) =>
        {
            AttackOutcome::Blocked {
                by: "DEP (W^X)".into(),
            }
        }
        other => {
            if config.aslr_bits.is_some() {
                AttackOutcome::Blocked {
                    by: "ASLR (guess missed)".into(),
                }
            } else {
                AttackOutcome::Failed {
                    reason: other.to_string(),
                }
            }
        }
    }
}

fn run_single_shot(
    cache: &ProgramCache,
    source: &str,
    config: DefenseConfig,
    seed: u64,
    payload: &[u8],
    evidence: &[u8],
) -> Result<AttackResult, CompileError> {
    let mut session = cache.launch(source, config, seed)?;
    session.machine.io_mut().feed_input(0, payload);
    let outcome = session.run(FUEL);
    Ok(AttackResult {
        technique: Technique::CodeInjection, // overwritten by callers
        config,
        outcome: classify(&session, outcome, config, evidence),
    })
}

/// Runs one technique against its canonical victim under `config`.
///
/// `seed` drives the victim's launch randomness (ASLR slide, canary
/// value); the attacker never sees it.
///
/// # Errors
///
/// Returns a [`CompileError`] if victim compilation fails — never
/// expected for the built-in victims.
pub fn run_technique(
    technique: Technique,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    run_technique_cached(technique, config, seed, crate::cache::global())
}

/// Like [`run_technique`], compiling victim and local copy through
/// `cache` so repeated trials (matrix cells, ASLR brute force, oracle
/// queries) reuse images instead of recompiling.
pub fn run_technique_cached(
    technique: Technique,
    config: DefenseConfig,
    seed: u64,
    cache: &ProgramCache,
) -> Result<AttackResult, CompileError> {
    let mut result = match technique {
        Technique::CodeInjection => attack_code_injection(cache, config, seed)?,
        Technique::CodePointerOverwrite => attack_code_pointer(cache, config, seed)?,
        Technique::CodeCorruption => attack_code_corruption(cache, config, seed)?,
        Technique::Ret2Libc => attack_ret2libc(cache, config, seed)?,
        Technique::Rop => attack_rop(cache, config, seed)?,
        Technique::DataOnly => attack_data_only(cache, config, seed)?,
        Technique::InfoLeak => attack_info_leak(cache, config, seed)?,
    };
    result.technique = technique;
    Ok(result)
}

fn attack_code_injection(
    cache: &ProgramCache,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    let local = attacker_view(cache, VICTIM_SMASH, config)?;
    // The attacker computes the buffer address from the local copy.
    let bp = frame_base_for(&local, &[("main", 0), ("handle", 1)])?;
    let buf_off = local.frames["handle"]
        .locals
        .iter()
        .find(|(n, _)| n == "buf")
        .map(|(_, s)| s.offset)
        .expect("buf exists");
    let buf_addr = bp.wrapping_add(buf_off as u32);
    let shellcode = swsec_attacks::shellcode::write_shellcode(buf_addr, 1, b"PWNED", MARKER_EXIT);
    let payload =
        Payload::smash_with_shellcode(&local.frames["handle"], "buf", buf_addr, &shellcode)
            .expect("shellcode fits")
            .build();
    run_single_shot(cache, VICTIM_SMASH, config, seed, &payload, b"PWNED")
}

fn attack_code_pointer(
    cache: &ProgramCache,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    let local = attacker_view(cache, VICTIM_FNPTR, config)?;
    let grant = local.function_addr("grant")?;
    // Fill the buffer exactly, then overwrite only the function pointer
    // sitting above it — the canary (above the pointer) stays intact.
    let frame = &local.frames["handle"];
    let buf_off = frame
        .locals
        .iter()
        .find(|(n, _)| n == "buf")
        .map(|(_, s)| s.offset)
        .expect("buf exists");
    let action_off = frame
        .locals
        .iter()
        .find(|(n, _)| n == "action")
        .map(|(_, s)| s.offset)
        .expect("action exists");
    let distance = (action_off - buf_off) as usize;
    let payload = Payload::new().pad(distance, b'A').word(grant).build();
    run_single_shot(cache, VICTIM_FNPTR, config, seed, &payload, b"SECRET")
}

fn attack_code_corruption(
    cache: &ProgramCache,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    let local = attacker_view(cache, VICTIM_POKE, config)?;
    // Find the `movi r0, 12345` that materializes the comparison
    // constant, and compute its distance from `table`.
    let cmp_addr = find_instr_addr(&local.text, local.text_base, |i| {
        matches!(i, Instr::MovI { imm: 12345, .. })
    })
    .expect("comparison constant present");
    let imm_addr = cmp_addr + 2; // [opcode][reg][imm32]
    let table = local.globals["table"].addr;
    let mut payload = Payload::new();
    // Patch the four immediate bytes to zero: `check == 0` is true.
    for i in 0..4u32 {
        let target = imm_addr + i;
        let idx = target.wrapping_sub(table);
        payload = payload
            .word(idx) // idx, little-endian, from cmd[0..4]
            .bytes(&[0x00]) // value
            .pad(3, 0); // pad the 8-byte command
    }
    run_single_shot(cache, VICTIM_POKE, config, seed, &payload.build(), b"SECRET")
}

fn attack_ret2libc(
    cache: &ProgramCache,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    let local = attacker_view(cache, VICTIM_SMASH, config)?;
    let grant = local.function_addr("grant")?;
    let payload = Payload::smash(&local.frames["handle"], "buf", grant)
        .expect("buf exists")
        .build();
    run_single_shot(cache, VICTIM_SMASH, config, seed, &payload, b"SECRET")
}

fn attack_rop(
    cache: &ProgramCache,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    let local = attacker_view(cache, VICTIM_SMASH, config)?;
    let finder = GadgetFinder::scan(&local.text, local.text_base, 3);
    let Some(pop_r0) = finder.pop_ret(Reg::R0) else {
        return Ok(AttackResult {
            technique: Technique::Rop,
            config,
            outcome: AttackOutcome::Failed {
                reason: "no pop r0; ret gadget".into(),
            },
        });
    };
    let exit_gadget = find_instr_addr(&local.text, local.text_base, |i| {
        matches!(i, Instr::Sys(n) if *n == swsec_vm::isa::sys::EXIT)
    })
    .expect("an exit syscall exists in _start");
    // Chain: pop r0 <- 0x1337; "return" into `sys exit`.
    let chain = RopChain::new().word(pop_r0).word(MARKER_EXIT).word(exit_gadget);
    let smash = Payload::smash(&local.frames["handle"], "buf", chain.words()[0])
        .expect("buf exists");
    let mut payload = smash.build();
    payload.extend_from_slice(&chain.build()[4..]);
    run_single_shot(cache, VICTIM_SMASH, config, seed, &payload, b"")
}

fn attack_data_only(
    cache: &ProgramCache,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    let local = attacker_view(cache, VICTIM_ADMIN, config)?;
    let frame = &local.frames["handle"];
    let buf_off = frame
        .locals
        .iter()
        .find(|(n, _)| n == "buf")
        .map(|(_, s)| s.offset)
        .expect("buf exists");
    let admin_off = frame
        .locals
        .iter()
        .find(|(n, _)| n == "is_admin")
        .map(|(_, s)| s.offset)
        .expect("is_admin exists");
    let distance = (admin_off - buf_off) as usize;
    let payload = Payload::new().pad(distance, b'A').word(1).build();
    run_single_shot(cache, VICTIM_ADMIN, config, seed, &payload, b"SECRET")
}

fn attack_info_leak(
    cache: &ProgramCache,
    config: DefenseConfig,
    seed: u64,
) -> Result<AttackResult, CompileError> {
    let local = attacker_view(cache, VICTIM_LEAK, config)?;
    let mut session = cache.launch(VICTIM_LEAK, config, seed)?;
    session.machine.set_blocking_reads(true);

    // Stage 1: benign-length request; harvest the over-read reply.
    session.machine.io_mut().feed_input(0, &[b'A'; 16]);
    let outcome = session.run(FUEL);
    if !matches!(outcome, RunOutcome::Blocked { .. }) {
        // A bounds-checked victim traps on the over-read/overflow before
        // ever blocking for the second request.
        return Ok(AttackResult {
            technique: Technique::InfoLeak,
            config,
            outcome: classify(&session, outcome, config, b""),
        });
    }
    let leak = session.machine.io().output(1).to_vec();
    if leak.len() < 28 {
        return Ok(AttackResult {
            technique: Technique::InfoLeak,
            config,
            outcome: AttackOutcome::Failed {
                reason: format!("leak too short ({} bytes)", leak.len()),
            },
        });
    }
    let word = |off: usize| {
        u32::from_le_bytes([leak[off], leak[off + 1], leak[off + 2], leak[off + 3]])
    };
    // Frame layout past the 16-byte buffer: [canary?] saved bp, ret.
    let (canary, saved_bp, leaked_ret) = if config.canary {
        (Some(word(16)), word(20), word(24))
    } else {
        (None, word(16), word(20))
    };
    // De-randomize: the leaked return address is the point in `main`
    // right after `call handle`; its offset from the text base is known
    // from the local copy.
    let static_ret = {
        let main_addr = local.function_addr("main")?;
        // Find the call to handle inside main and take the next address.
        let handle_addr = local.function_addr("handle")?;
        find_instr_addr(
            &local.text[(main_addr - local.text_base) as usize..],
            main_addr,
            |i| matches!(i, Instr::Call(t) if *t == handle_addr),
        )
        .expect("main calls handle")
            + 5 // call is 5 bytes
    };
    let slide = leaked_ret.wrapping_sub(static_ret);
    let grant = local.function_addr("grant")?.wrapping_add(slide);

    // Stage 2: precise smash with the leaked canary and bp.
    let mut payload = Payload::new().pad(16, b'A');
    if let Some(c) = canary {
        payload = payload.word(c);
    }
    let payload = payload.word(saved_bp).word(grant).build();
    session.machine.io_mut().feed_input(0, &payload);
    let outcome = session.run(FUEL);
    Ok(AttackResult {
        technique: Technique::InfoLeak,
        config,
        outcome: classify(&session, outcome, config, b"SECRET"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(t: Technique, config: DefenseConfig) -> AttackOutcome {
        run_technique(t, config, 42).unwrap().outcome
    }

    #[test]
    fn all_techniques_compromise_the_unprotected_platform() {
        for t in Technique::ALL {
            let o = outcome(t, DefenseConfig::none());
            assert!(o.succeeded(), "{t} should succeed unprotected, got {o}");
        }
    }

    #[test]
    fn canary_blocks_return_address_smashing() {
        let mut cfg = DefenseConfig::none();
        cfg.canary = true;
        for t in [Technique::CodeInjection, Technique::Ret2Libc, Technique::Rop] {
            let o = outcome(t, cfg);
            assert_eq!(
                o,
                AttackOutcome::Blocked { by: "stack canary".into() },
                "{t}"
            );
        }
    }

    #[test]
    fn canary_misses_pointer_and_data_attacks() {
        let mut cfg = DefenseConfig::none();
        cfg.canary = true;
        for t in [
            Technique::CodePointerOverwrite,
            Technique::DataOnly,
            Technique::CodeCorruption,
        ] {
            assert!(outcome(t, cfg).succeeded(), "{t} should bypass canaries");
        }
    }

    #[test]
    fn dep_blocks_injection_and_corruption_but_not_reuse() {
        let mut cfg = DefenseConfig::none();
        cfg.dep = true;
        assert!(matches!(
            outcome(Technique::CodeInjection, cfg),
            AttackOutcome::Blocked { by } if by == "DEP"
        ));
        assert!(matches!(
            outcome(Technique::CodeCorruption, cfg),
            AttackOutcome::Blocked { by } if by.starts_with("DEP")
        ));
        // Code *reuse* sails past DEP — the paper's motivation for it.
        assert!(outcome(Technique::Ret2Libc, cfg).succeeded());
        assert!(outcome(Technique::Rop, cfg).succeeded());
        assert!(outcome(Technique::DataOnly, cfg).succeeded());
    }

    #[test]
    fn aslr_blocks_address_dependent_attacks() {
        let mut cfg = DefenseConfig::none();
        cfg.aslr_bits = Some(8);
        for t in [
            Technique::CodeInjection,
            Technique::Ret2Libc,
            Technique::Rop,
            Technique::CodePointerOverwrite,
            Technique::CodeCorruption,
        ] {
            let o = outcome(t, cfg);
            assert!(!o.succeeded(), "{t} should miss under ASLR, got {o}");
        }
        // Data-only needs no addresses: ASLR is irrelevant.
        assert!(outcome(Technique::DataOnly, cfg).succeeded());
    }

    #[test]
    fn info_leak_defeats_canary_dep_aslr() {
        // The paper's [5]: leaking memory breaks the secrecy assumptions
        // of canaries and ASLR; DEP doesn't matter for code reuse.
        let o = outcome(Technique::InfoLeak, DefenseConfig::modern(8));
        assert!(o.succeeded(), "info leak should win, got {o}");
    }

    #[test]
    fn data_only_defeats_the_full_modern_stack() {
        let o = outcome(Technique::DataOnly, DefenseConfig::modern(8));
        assert!(o.succeeded(), "data-only should win, got {o}");
    }

    #[test]
    fn shadow_stack_blocks_return_hijacks_even_with_leak() {
        let mut cfg = DefenseConfig::modern(8);
        cfg.shadow_stack = true;
        for t in [Technique::Ret2Libc, Technique::Rop, Technique::InfoLeak] {
            let o = outcome(t, cfg);
            assert!(
                matches!(&o, AttackOutcome::Blocked { by } if by == "shadow stack" || by == "stack canary"),
                "{t}: got {o}"
            );
        }
        // …but not the forward edge or data.
        assert!(outcome(Technique::CodePointerOverwrite, DefenseConfig {
            shadow_stack: true,
            ..DefenseConfig::none()
        })
        .succeeded());
    }

    #[test]
    fn bounds_checks_block_everything() {
        let mut cfg = DefenseConfig::none();
        cfg.bounds_checks = true;
        for t in Technique::ALL {
            let o = outcome(t, cfg);
            assert!(
                matches!(&o, AttackOutcome::Blocked { by } if by == "bounds checks"),
                "{t}: got {o}"
            );
        }
    }
}
