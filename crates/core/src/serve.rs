//! `swsec-serve`: campaign-as-a-service.
//!
//! The batch campaign runner ([`crate::campaign`]) answers "run these
//! experiments once and exit". A *remote* attacker in the paper's
//! model is the opposite shape: many concurrent clients throwing
//! attack attempts at long-lived victims, whose resistance is measured
//! in sustained attempts/sec and tail latency, not single-shot
//! experiment tables. [`CampaignService`] is that production shape,
//! fully in-process (no network dependency):
//!
//! * **a persistent job queue** — tenants [`submit`](CampaignService::submit)
//!   attack-attempt jobs; [`run`](CampaignService::run) drains the
//!   backlog on a work-stealing worker pool and the service lives on,
//!   queue, tenants and warm state intact, for the next round;
//! * **multi-tenant sessions** — each tenant owns a seed namespace
//!   (job seeds derive from the tenant seed and the tenant-local job
//!   index, so one tenant's results are independent of every other
//!   tenant's traffic), a backlog quota, a priority, and its own slice
//!   of the rendered report;
//! * **sharded pools of warm [`ForkServer`]s** — keyed on
//!   `(program, CompileOptions, DefenseConfig)`, so a hot victim is
//!   compiled once and booted once, then leased across jobs and
//!   tenants. Every lease is re-armed in full (serve mode, fuel, event
//!   sink, profiler) before it runs a single attempt: one tenant's
//!   attempt configuration can never bleed into another's;
//! * **backpressure + graceful degradation** — the queue is bounded.
//!   When it is full, an arriving job sheds the lowest-priority queued
//!   job (strictly lower than its own priority) or is itself rejected;
//!   over-quota tenants are rejected at submission. Every dropped job
//!   gets a *typed* outcome ([`JobOutcome::Shed`],
//!   [`JobOutcome::Rejected`]) in the tenant's report and a
//!   [`SecurityEvent::JobShed`] on the default sink — degradation is
//!   observable, never silent;
//! * **containment** — each job runs on a watchdog-guarded thread with
//!   the campaign runner's machinery: deadline, bounded same-seed
//!   retry, poison-tolerant locks, and the counter quarantine
//!   ([`counters::with_quarantine`]) that detaches an abandoned job's
//!   VM-counter and telemetry traffic from every later round.
//!
//! Determinism contract: a job's result is a pure function of its
//! `(tenant seed, job index, spec)`. [`CampaignService::render`] is
//! therefore byte-identical at any worker count and in either
//! [`ServeMode`] — the property the verify.sh service smoke and the
//! `tests/serve.rs` differential suite pin down.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use swsec_defenses::DefenseConfig;
use swsec_minc::{CompileError, CompileOptions};
use swsec_obs::span::{self, SpanCollector, SpanRecord, SpanRecorder};
use swsec_obs::{default_sink, Histogram, MetricsRegistry, SecurityEvent, SpanKind, SpanMask};
use swsec_rng::derive;
use swsec_vm::counters::{self, VmCounters};
use swsec_vm::cpu::RunOutcome;
use swsec_vm::profile::Profiler;

use crate::cache::{CacheStats, ProgramCache};
use crate::campaign::{lock_unpoisoned, panic_message, VM_STAT_GUARD};
use crate::harness::{AttackTarget, ForkServer, ServeMode, DEFAULT_FUEL};
use crate::loader::plan_options;
use crate::report::Table;

/// Service-wide policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads per round; `0` means one per available core.
    pub workers: usize,
    /// Maximum jobs queued across all tenants. Arrivals beyond it shed
    /// lower-priority queued work or are rejected (typed, observable).
    pub queue_capacity: usize,
    /// Wall-clock budget for one job attempt; past it the job's thread
    /// is abandoned (and quarantined) and the job retried or recorded
    /// [`JobOutcome::TimedOut`].
    pub job_deadline: Duration,
    /// How many times a failed job is re-attempted (same seed) before
    /// its failure is recorded. `0` disables retry.
    pub job_retries: u32,
    /// Serve attempts from boot-time snapshots ([`ServeMode::Fork`])
    /// instead of rebuilding per attempt. Results are byte-identical
    /// either way; only throughput differs.
    pub fork_server: bool,
    /// Fuel budget per attempt.
    pub fuel: u64,
    /// Warm servers kept per pool key; an excess return is dropped
    /// (and counted) instead of parked.
    pub pool_keep: usize,
    /// Compile-cache capacity ([`ProgramCache::bounded`]); `None` is
    /// unbounded — only sensible for short-lived test services.
    pub cache_capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_capacity: 256,
            job_deadline: Duration::from_secs(120),
            job_retries: 1,
            fork_server: true,
            fuel: DEFAULT_FUEL,
            pool_keep: 2,
            cache_capacity: Some(256),
        }
    }
}

/// One tenant's registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Display name (report tables, telemetry metadata).
    pub name: String,
    /// Root of the tenant's seed namespace: job `j` runs under
    /// `derive(seed, &[j])`, independent of every other tenant.
    pub seed: u64,
    /// Scheduling weight under overload: when the queue is full, an
    /// arriving job sheds the oldest queued job of *strictly lower*
    /// priority (larger = more important).
    pub priority: u8,
    /// Maximum jobs this tenant may have queued at once; submissions
    /// past it are rejected with [`RejectReason::QuotaExceeded`].
    pub quota: usize,
}

/// Handle for a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's index in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle for a submitted (or recorded-as-rejected) job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobId {
    /// The owning tenant.
    pub tenant: TenantId,
    /// The tenant-local job index.
    pub job: u32,
}

/// What one job asks the service to do: `attempts` attack attempts
/// against `source` compiled and defended per `config`, with inputs
/// derived deterministically from the job seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// MinC source of the victim.
    pub source: String,
    /// Countermeasures deployed on the victim.
    pub config: DefenseConfig,
    /// Attack attempts to serve.
    pub attempts: u32,
    /// Ceiling on derived attack-input length, bytes (≥ 1).
    pub max_input: u32,
}

impl JobSpec {
    /// A spec with the default attempt budget (64 attempts, inputs up
    /// to 96 bytes — enough to smash the stock victims).
    pub fn new(source: impl Into<String>, config: DefenseConfig) -> JobSpec {
        JobSpec {
            source: source.into(),
            config,
            attempts: 64,
            max_input: 96,
        }
    }
}

/// Why a submission was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant already has `quota` jobs queued.
    QuotaExceeded {
        /// The quota in force.
        quota: usize,
    },
    /// The queue is full and no queued job has strictly lower priority
    /// than the arrival.
    QueueFull {
        /// The queue capacity in force.
        capacity: usize,
    },
}

impl RejectReason {
    /// Short stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QuotaExceeded { .. } => "rejected(quota)",
            RejectReason::QueueFull { .. } => "rejected(queue-full)",
        }
    }
}

/// Architectural result of one completed job: identical across worker
/// counts and [`ServeMode`]s (cache-warmth effects are excluded by
/// construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Attempts served.
    pub attempts: u64,
    /// Attempts that halted normally.
    pub halted: u64,
    /// Attempts stopped by a platform fault (incl. canary trips).
    pub faulted: u64,
    /// Attempts that exhausted their fuel budget.
    pub out_of_fuel: u64,
    /// Attempts that ended blocked on input.
    pub blocked: u64,
    /// Attempts whose output leaked the `SECRET` marker — successful
    /// exploitation.
    pub secret_leaks: u64,
}

/// The typed outcome of one job, [`JobOutcome::Pending`] until its
/// round runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Queued, not yet run.
    Pending,
    /// Ran to completion first try.
    Done(JobStats),
    /// Ran to completion after `n` failed attempts.
    Retried {
        /// Failed attempts before the success.
        n: u32,
        /// The successful run's stats.
        stats: JobStats,
    },
    /// Failed past the retry budget (panic or staging error).
    Failed {
        /// The final failure message.
        msg: String,
    },
    /// Exceeded the job deadline past the retry budget; its last
    /// attempt thread was abandoned and quarantined.
    TimedOut,
    /// Admitted, then dropped from a full queue to make room for
    /// higher-priority work.
    Shed,
    /// Refused admission.
    Rejected(RejectReason),
}

impl JobOutcome {
    /// Short stable label for report tables. Failure *messages* are
    /// deliberately excluded (they may carry nondeterministic detail);
    /// the full message stays available via
    /// [`CampaignService::outcome`].
    pub fn label(&self) -> String {
        match self {
            JobOutcome::Pending => "pending".to_string(),
            JobOutcome::Done(_) => "done".to_string(),
            JobOutcome::Retried { n, .. } => format!("retried({n})"),
            JobOutcome::Failed { .. } => "failed".to_string(),
            JobOutcome::TimedOut => "timed-out".to_string(),
            JobOutcome::Shed => "shed".to_string(),
            JobOutcome::Rejected(reason) => reason.label().to_string(),
        }
    }

    /// The stats of a completed run, if there was one.
    pub fn stats(&self) -> Option<JobStats> {
        match self {
            JobOutcome::Done(stats) | JobOutcome::Retried { stats, .. } => Some(*stats),
            _ => None,
        }
    }

    /// Whether the job produced a result (done or retried-then-done).
    pub fn is_ok(&self) -> bool {
        self.stats().is_some()
    }
}

/// Monotone service-lifetime totals; subtract snapshots for windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeTotals {
    /// Jobs submitted (admitted or not).
    pub jobs_submitted: u64,
    /// Jobs completed (incl. after retry).
    pub jobs_done: u64,
    /// Jobs that needed at least one retry to complete.
    pub jobs_retried: u64,
    /// Jobs failed terminally (panic/staging error/timeout).
    pub jobs_failed: u64,
    /// Admitted jobs shed under backpressure.
    pub jobs_shed: u64,
    /// Submissions rejected at admission.
    pub jobs_rejected: u64,
    /// Attack attempts served.
    pub attempts: u64,
    /// Attempts that leaked the secret.
    pub secret_leaks: u64,
    /// Jobs served by a warm pooled server.
    pub pool_hits: u64,
    /// Jobs that had to boot a server.
    pub pool_boots: u64,
    /// Warm servers dropped because their pool slot was full.
    pub pool_drops: u64,
}

impl ServeTotals {
    /// The increments between `earlier` and `self` (saturating).
    pub fn since(self, earlier: ServeTotals) -> ServeTotals {
        ServeTotals {
            jobs_submitted: self.jobs_submitted.saturating_sub(earlier.jobs_submitted),
            jobs_done: self.jobs_done.saturating_sub(earlier.jobs_done),
            jobs_retried: self.jobs_retried.saturating_sub(earlier.jobs_retried),
            jobs_failed: self.jobs_failed.saturating_sub(earlier.jobs_failed),
            jobs_shed: self.jobs_shed.saturating_sub(earlier.jobs_shed),
            jobs_rejected: self.jobs_rejected.saturating_sub(earlier.jobs_rejected),
            attempts: self.attempts.saturating_sub(earlier.attempts),
            secret_leaks: self.secret_leaks.saturating_sub(earlier.secret_leaks),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_boots: self.pool_boots.saturating_sub(earlier.pool_boots),
            pool_drops: self.pool_drops.saturating_sub(earlier.pool_drops),
        }
    }

    /// Jobs dropped one way or another (shed + rejected).
    pub fn degraded(self) -> u64 {
        self.jobs_shed + self.jobs_rejected
    }
}

#[derive(Debug, Default)]
struct ServeCounters {
    jobs_submitted: AtomicU64,
    jobs_done: AtomicU64,
    jobs_retried: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_shed: AtomicU64,
    jobs_rejected: AtomicU64,
    attempts: AtomicU64,
    secret_leaks: AtomicU64,
    pool_hits: AtomicU64,
    pool_boots: AtomicU64,
    pool_drops: AtomicU64,
}

impl ServeCounters {
    fn snapshot(&self) -> ServeTotals {
        ServeTotals {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_done: self.jobs_done.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            secret_leaks: self.secret_leaks.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_boots: self.pool_boots.load(Ordering::Relaxed),
            pool_drops: self.pool_drops.load(Ordering::Relaxed),
        }
    }
}

/// Pool key: everything that makes two victims interchangeable.
type PoolKey = (String, CompileOptions, DefenseConfig);

const POOL_SHARDS: usize = 8;

/// Sharded pools of warm, parked [`ForkServer`]s.
///
/// A parked server is compiled, booted and snapshotted; leasing it
/// costs a hash lookup instead of a compile+boot. Shard locks are
/// poison-tolerant: a worker that panicked mid-checkin must not wedge
/// the pool for every later job.
#[derive(Default)]
struct ForkPool {
    shards: [Mutex<HashMap<PoolKey, Vec<ForkServer>>>; POOL_SHARDS],
    keep: usize,
}

impl ForkPool {
    fn new(keep: usize) -> ForkPool {
        ForkPool {
            keep: keep.max(1),
            ..ForkPool::default()
        }
    }

    fn shard(&self, key: &PoolKey) -> &Mutex<HashMap<PoolKey, Vec<ForkServer>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % POOL_SHARDS]
    }

    fn checkout(&self, key: &PoolKey) -> Option<ForkServer> {
        lock_unpoisoned(self.shard(key)).get_mut(key)?.pop()
    }

    /// Parks `server` for reuse; `false` when the slot was full and the
    /// server was dropped instead.
    fn checkin(&self, key: PoolKey, server: ForkServer) -> bool {
        let shard = self.shard(&key);
        let mut map = lock_unpoisoned(shard);
        let slot = map.entry(key).or_default();
        if slot.len() >= self.keep {
            return false;
        }
        slot.push(server);
        true
    }

    /// Warm servers currently parked, across all shards.
    fn warm(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(s).values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// One admitted job waiting for a round.
#[derive(Debug)]
struct QueuedJob {
    record: usize,
    tenant: usize,
    job: u32,
    seed: u64,
    priority: u8,
    spec: Arc<JobSpec>,
}

struct TenantState {
    cfg: TenantConfig,
    next_job: u32,
    queued: usize,
}

/// One job's bookkeeping slot; the outcome is the only mutable part.
struct JobSlot {
    tenant: usize,
    job: u32,
    seed: u64,
    outcome: Mutex<JobOutcome>,
}

/// Shared context a job attempt thread needs (the thread may outlive
/// the round if the watchdog abandons it, hence `Arc` everything).
struct JobCtx {
    cache: Arc<ProgramCache>,
    pool: Arc<ForkPool>,
    counters: Arc<ServeCounters>,
    cfg: ServeConfig,
    profiler: Option<Arc<Profiler>>,
}

/// Observability hooks for one service round; all observational — the
/// rendered report is byte-identical with or without them.
#[derive(Clone, Default)]
pub struct ServeTelemetry {
    /// Registry absorbing the round's `serve.*`, `cache.*` and `vm.*`
    /// counter windows plus the `serve.job_micros` histogram.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// When set, record spans of the selected kinds: a root span on
    /// track 0, each job's spans (wrapped in a [`SpanKind::Job`]) on
    /// track `order + 1` — tracks follow the deterministic round
    /// order, never the worker that ran the job.
    pub spans: Option<SpanMask>,
    /// When set, scoped onto every job's attempt thread; leased
    /// servers are re-armed with it per job.
    pub profiler: Option<Arc<Profiler>>,
}

impl std::fmt::Debug for ServeTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTelemetry")
            .field("metrics", &self.metrics.is_some())
            .field("spans", &self.spans)
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

/// What one [`CampaignService::run`] round observed. Everything here
/// is run *metadata* (wall-clock, windowed global counters); the
/// deterministic per-tenant results live in
/// [`CampaignService::render`].
#[derive(Debug)]
pub struct ServiceRound {
    /// Jobs drained and executed this round.
    pub jobs: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock for the round.
    pub elapsed: Duration,
    /// Service-counter increments since the previous round (includes
    /// submissions/sheds that happened between rounds).
    pub totals: ServeTotals,
    /// VM-counter increments over the round's (guarded) window.
    pub vm: VmCounters,
    /// Recorded spans per track — empty unless
    /// [`ServeTelemetry::spans`] was set.
    pub spans: Vec<(u32, Vec<SpanRecord>)>,
}

impl ServiceRound {
    /// Renders the recorded spans as an indented tree (see
    /// [`swsec_obs::span::render_tree`]).
    pub fn span_tree(&self) -> String {
        span::render_tree(&self.spans)
    }

    /// One-line human summary (non-deterministic: timings).
    pub fn summary_line(&self) -> String {
        format!(
            "serve round: {} jobs, {} workers, {:.3}s wall, {} attempts \
             ({:.0}/s), pool {} hits / {} boots, {} shed, {} rejected, {} failed",
            self.jobs,
            self.workers,
            self.elapsed.as_secs_f64(),
            self.totals.attempts,
            self.totals.attempts as f64 / self.elapsed.as_secs_f64().max(1e-9),
            self.totals.pool_hits,
            self.totals.pool_boots,
            self.totals.jobs_shed,
            self.totals.jobs_rejected,
            self.totals.jobs_failed,
        )
    }
}

/// The long-lived campaign service (see the [module docs](self)).
pub struct CampaignService {
    cfg: ServeConfig,
    cache: Arc<ProgramCache>,
    pool: Arc<ForkPool>,
    counters: Arc<ServeCounters>,
    tenants: Vec<TenantState>,
    queue: VecDeque<QueuedJob>,
    records: Vec<JobSlot>,
    job_micros: Mutex<Histogram>,
    queue_peak: usize,
    rounds: u64,
    exported: ServeTotals,
    exported_cache: CacheStats,
}

impl std::fmt::Debug for CampaignService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignService")
            .field("cfg", &self.cfg)
            .field("tenants", &self.tenants.len())
            .field("queued", &self.queue.len())
            .field("records", &self.records.len())
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

impl CampaignService {
    /// An empty service under `cfg`.
    pub fn new(cfg: ServeConfig) -> CampaignService {
        let cache = Arc::new(match cfg.cache_capacity {
            Some(cap) => ProgramCache::bounded(cap),
            None => ProgramCache::new(),
        });
        let pool = Arc::new(ForkPool::new(cfg.pool_keep));
        CampaignService {
            cfg,
            cache,
            pool,
            counters: Arc::new(ServeCounters::default()),
            tenants: Vec::new(),
            queue: VecDeque::new(),
            records: Vec::new(),
            job_micros: Mutex::new(Histogram::new()),
            queue_peak: 0,
            rounds: 0,
            exported: ServeTotals::default(),
            exported_cache: CacheStats::default(),
        }
    }

    /// Registers a tenant session.
    pub fn register_tenant(&mut self, cfg: TenantConfig) -> TenantId {
        self.tenants.push(TenantState {
            cfg,
            next_job: 0,
            queued: 0,
        });
        TenantId(self.tenants.len() - 1)
    }

    /// Submits one job for `tenant`.
    ///
    /// Admission control runs here, deterministically in program
    /// order: over-quota and unsheddable-overflow submissions are
    /// refused with a typed [`RejectReason`] (and recorded in the
    /// tenant's report — a refused job still consumed its job index,
    /// so job identities are stable). A full queue sheds the oldest
    /// queued job of strictly lower priority to admit a more important
    /// arrival; the shed job's outcome becomes [`JobOutcome::Shed`]
    /// and a [`SecurityEvent::JobShed`] goes to the default sink.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] when the job was not admitted.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` was not returned by
    /// [`register_tenant`](Self::register_tenant) on this service.
    pub fn submit(&mut self, tenant: TenantId, spec: JobSpec) -> Result<JobId, RejectReason> {
        let t = tenant.0;
        assert!(t < self.tenants.len(), "unknown tenant {t}");
        let job = self.tenants[t].next_job;
        self.tenants[t].next_job += 1;
        let seed = derive(self.tenants[t].cfg.seed, &[u64::from(job)]);
        let id = JobId { tenant, job };
        self.counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);

        let quota = self.tenants[t].cfg.quota;
        if self.tenants[t].queued >= quota {
            self.record_drop(t, job, seed, JobOutcome::Rejected(RejectReason::QuotaExceeded { quota }));
            self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(RejectReason::QuotaExceeded { quota });
        }

        if self.queue.len() >= self.cfg.queue_capacity {
            let priority = self.tenants[t].cfg.priority;
            // Degradation ladder: shed the oldest queued job whose
            // priority is strictly lower than the arrival's; with no
            // such victim the arrival itself is rejected (ties never
            // shed, so equal-priority tenants cannot starve each
            // other).
            let victim = self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, q)| (q.priority, *i))
                .filter(|(_, q)| q.priority < priority)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let shed = self.queue.remove(i).expect("victim index in bounds");
                    self.tenants[shed.tenant].queued -= 1;
                    *lock_unpoisoned(&self.records[shed.record].outcome) = JobOutcome::Shed;
                    self.counters.jobs_shed.fetch_add(1, Ordering::Relaxed);
                    emit_shed(shed.tenant, shed.job);
                }
                None => {
                    let capacity = self.cfg.queue_capacity;
                    self.record_drop(
                        t,
                        job,
                        seed,
                        JobOutcome::Rejected(RejectReason::QueueFull { capacity }),
                    );
                    self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(RejectReason::QueueFull { capacity });
                }
            }
        }

        let record = self.records.len();
        self.records.push(JobSlot {
            tenant: t,
            job,
            seed,
            outcome: Mutex::new(JobOutcome::Pending),
        });
        self.queue.push_back(QueuedJob {
            record,
            tenant: t,
            job,
            seed,
            priority: self.tenants[t].cfg.priority,
            spec: Arc::new(spec),
        });
        self.tenants[t].queued += 1;
        self.queue_peak = self.queue_peak.max(self.queue.len());
        Ok(id)
    }

    fn record_drop(&mut self, tenant: usize, job: u32, seed: u64, outcome: JobOutcome) {
        emit_shed(tenant, job);
        self.records.push(JobSlot {
            tenant,
            job,
            seed,
            outcome: Mutex::new(outcome),
        });
    }

    /// Drains and executes the queued backlog; the plain-telemetry
    /// form of [`run_with`](Self::run_with).
    pub fn run(&mut self) -> ServiceRound {
        self.run_with(&ServeTelemetry::default())
    }

    /// Drains the backlog on a work-stealing worker pool and returns
    /// the round's metadata. Jobs are interleaved fairly across
    /// tenants (round-robin over per-tenant FIFO order) and each runs
    /// contained: watchdog deadline, bounded same-seed retry, counter
    /// quarantine on abandonment. The service survives the round with
    /// its tenants, records and warm pools intact.
    pub fn run_with(&mut self, telemetry: &ServeTelemetry) -> ServiceRound {
        let started = Instant::now();
        // Window the process-global VM counters, serialized against
        // concurrent campaigns/rounds (see VM_STAT_GUARD).
        let _vm_window = lock_unpoisoned(&VM_STAT_GUARD);
        let vm_before = counters::snapshot();
        self.rounds += 1;

        // Fair order: round-robin across tenants, preserving each
        // tenant's FIFO. Deterministic — a pure function of the
        // submission history.
        let mut per_tenant: Vec<VecDeque<QueuedJob>> =
            (0..self.tenants.len()).map(|_| VecDeque::new()).collect();
        for job in self.queue.drain(..) {
            self.tenants[job.tenant].queued -= 1;
            per_tenant[job.tenant].push_back(job);
        }
        let mut ordered = Vec::new();
        loop {
            let mut any = false;
            for q in &mut per_tenant {
                if let Some(job) = q.pop_front() {
                    ordered.push(job);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        let total = ordered.len();

        let workers = if self.cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.cfg.workers
        };
        let workers = workers.clamp(1, total.max(1));

        let collector = telemetry.spans.map(|mask| Arc::new(SpanCollector::new(mask)));
        let round_span = collector.as_ref().map(|c| {
            let round = self.rounds;
            c.recorder(0)
                .enter_with(SpanKind::Campaign, || {
                    format!("serve round {round}: {total} jobs")
                })
        });

        let ctx = Arc::new(JobCtx {
            cache: Arc::clone(&self.cache),
            pool: Arc::clone(&self.pool),
            counters: Arc::clone(&self.counters),
            cfg: self.cfg.clone(),
            profiler: telemetry.profiler.clone(),
        });

        // Per-worker deques, round-robin dealt; own-front/steal-back.
        let queues: Vec<Mutex<VecDeque<(usize, QueuedJob)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (order, job) in ordered.into_iter().enumerate() {
            lock_unpoisoned(&queues[order % workers]).push_back((order, job));
        }
        let micros: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();

        let records = &self.records;
        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let micros = &micros;
                let ctx = &ctx;
                let collector = &collector;
                scope.spawn(move || loop {
                    let task = lock_unpoisoned(&queues[me]).pop_front().or_else(|| {
                        (1..workers)
                            .find_map(|d| lock_unpoisoned(&queues[(me + d) % workers]).pop_back())
                    });
                    let Some((order, job)) = task else { break };
                    // Track from the round order, not the worker:
                    // stealing moves *who* runs a job, never where its
                    // spans land.
                    let recorder = collector.as_ref().map(|c| c.recorder(order as u32 + 1));
                    let job_started = Instant::now();
                    let outcome = run_job_resolved(ctx, &job, recorder.as_ref());
                    micros[order].store(
                        job_started.elapsed().as_micros() as u64,
                        Ordering::Relaxed,
                    );
                    match &outcome {
                        JobOutcome::Done(stats) => {
                            ctx.counters.jobs_done.fetch_add(1, Ordering::Relaxed);
                            note_stats(&ctx.counters, stats);
                        }
                        JobOutcome::Retried { stats, .. } => {
                            ctx.counters.jobs_done.fetch_add(1, Ordering::Relaxed);
                            ctx.counters.jobs_retried.fetch_add(1, Ordering::Relaxed);
                            note_stats(&ctx.counters, stats);
                        }
                        _ => {
                            ctx.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    *lock_unpoisoned(&records[job.record].outcome) = outcome;
                });
            }
        });

        drop(round_span);
        let spans = collector.as_ref().map(|c| c.take()).unwrap_or_default();
        let vm = counters::snapshot().since(vm_before);

        let now = self.counters.snapshot();
        let totals = now.since(self.exported);
        self.exported = now;
        {
            let mut hist = lock_unpoisoned(&self.job_micros);
            for m in &micros {
                hist.observe(m.load(Ordering::Relaxed));
            }
        }
        if let Some(registry) = telemetry.metrics.as_ref() {
            self.absorb_round(registry, &totals, &vm, &micros);
        }

        ServiceRound {
            jobs: total,
            workers,
            elapsed: started.elapsed(),
            totals,
            vm,
            spans,
        }
    }

    /// Folds one round's windows into `registry`: counters
    /// `serve.rounds`, `serve.jobs_submitted` / `serve.jobs_done` /
    /// `serve.jobs_retried` / `serve.jobs_failed` / `serve.jobs_shed` /
    /// `serve.jobs_rejected`, `serve.attempts` / `serve.secret_leaks`,
    /// `serve.pool.hits` / `serve.pool.boots` / `serve.pool.drops`,
    /// the `cache.*` window (incl. `cache.evictions`), the `vm.*`
    /// window (same names as the campaign runner), and one
    /// `serve.job_micros` observation per job.
    fn absorb_round(
        &mut self,
        registry: &MetricsRegistry,
        totals: &ServeTotals,
        vm: &VmCounters,
        micros: &[AtomicU64],
    ) {
        registry.counter("serve.rounds", 1);
        registry.counter("serve.jobs_submitted", totals.jobs_submitted);
        registry.counter("serve.jobs_done", totals.jobs_done);
        registry.counter("serve.jobs_retried", totals.jobs_retried);
        registry.counter("serve.jobs_failed", totals.jobs_failed);
        registry.counter("serve.jobs_shed", totals.jobs_shed);
        registry.counter("serve.jobs_rejected", totals.jobs_rejected);
        registry.counter("serve.attempts", totals.attempts);
        registry.counter("serve.secret_leaks", totals.secret_leaks);
        registry.counter("serve.pool.hits", totals.pool_hits);
        registry.counter("serve.pool.boots", totals.pool_boots);
        registry.counter("serve.pool.drops", totals.pool_drops);
        registry.counter("serve.pool.warm", self.pool.warm() as u64);
        let cache_now = self.cache.stats();
        let cache = CacheStats {
            hits: cache_now.hits.saturating_sub(self.exported_cache.hits),
            misses: cache_now.misses.saturating_sub(self.exported_cache.misses),
            parses: cache_now.parses.saturating_sub(self.exported_cache.parses),
            evictions: cache_now
                .evictions
                .saturating_sub(self.exported_cache.evictions),
        };
        self.exported_cache = cache_now;
        registry.counter("cache.hits", cache.hits);
        registry.counter("cache.misses", cache.misses);
        registry.counter("cache.parses", cache.parses);
        registry.counter("cache.evictions", cache.evictions);
        registry.counter("vm.instructions", vm.instructions);
        registry.counter("vm.icache.hits", vm.icache_hits);
        registry.counter("vm.icache.misses", vm.icache_misses);
        registry.counter("vm.tlb.hits", vm.tlb_hits);
        registry.counter("vm.tlb.misses", vm.tlb_misses);
        registry.counter("vm.tier2.blocks_compiled", vm.tier2_compiled);
        registry.counter("vm.tier2.block_hits", vm.tier2_hits);
        registry.counter("vm.tier2.instructions", vm.tier2_instructions);
        registry.counter("vm.tier2.side_exits", vm.tier2_side_exits);
        registry.counter("vm.tier2.invalidations", vm.tier2_invalidations);
        registry.counter("vm.tier2.ic_hits", vm.tier2_ic_hits);
        registry.counter("vm.tier2.ic_misses", vm.tier2_ic_misses);
        registry.counter("vm.tier2.ic_installs", vm.tier2_ic_installs);
        registry.counter("vm.tier2.ic_megamorphic", vm.tier2_ic_megamorphic);
        registry.counter("vm.snapshot.snapshots", vm.snapshots);
        registry.counter("vm.snapshot.restores", vm.restores);
        registry.counter("vm.snapshot.dirty_pages", vm.restore_dirty_pages);
        registry.counter("vm.snapshot.bytes_copied", vm.restore_bytes);
        registry.counter("vm.prof.samples", vm.prof_samples);
        registry.counter("vm.prof.frames", vm.prof_frames);
        for m in micros {
            registry.observe("serve.job_micros", m.load(Ordering::Relaxed));
        }
    }

    /// The deterministic per-tenant report: a header plus one table
    /// per tenant ([`render_tenant`](Self::render_tenant)).
    /// Byte-identical at any worker count and in either [`ServeMode`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== campaign service: {} tenants, {} jobs recorded ==",
            self.tenants.len(),
            self.records.len()
        );
        for t in 0..self.tenants.len() {
            let _ = writeln!(out);
            out.push_str(&self.render_tenant(TenantId(t)));
        }
        out
    }

    /// One tenant's job table, in job order. The per-tenant slice of
    /// [`render`](Self::render); the differential tests compare a
    /// tenant's table across service compositions.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` was not registered on this service.
    pub fn render_tenant(&self, tenant: TenantId) -> String {
        let t = tenant.0;
        assert!(t < self.tenants.len(), "unknown tenant {t}");
        let cfg = &self.tenants[t].cfg;
        let mut table = Table::new(
            format!(
                "tenant {}: seed {:#018x}, priority {}, quota {}",
                cfg.name, cfg.seed, cfg.priority, cfg.quota
            ),
            &[
                "job",
                "seed",
                "outcome",
                "attempts",
                "halted",
                "faulted",
                "no_fuel",
                "blocked",
                "secrets",
            ],
        );
        for slot in self.records.iter().filter(|s| s.tenant == t) {
            let outcome = lock_unpoisoned(&slot.outcome).clone();
            let mut row = vec![
                slot.job.to_string(),
                format!("{:#018x}", slot.seed),
                outcome.label(),
            ];
            match outcome.stats() {
                Some(s) => row.extend([
                    s.attempts.to_string(),
                    s.halted.to_string(),
                    s.faulted.to_string(),
                    s.out_of_fuel.to_string(),
                    s.blocked.to_string(),
                    s.secret_leaks.to_string(),
                ]),
                None => row.extend(std::iter::repeat_n("-".to_string(), 6)),
            }
            table.row(row);
        }
        table.to_string()
    }

    /// The recorded outcome of `id` ([`JobOutcome::Pending`] until its
    /// round runs); `None` for an unknown id.
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        self.records
            .iter()
            .find(|s| s.tenant == id.tenant.0 && s.job == id.job)
            .map(|s| lock_unpoisoned(&s.outcome).clone())
    }

    /// Service-lifetime totals.
    pub fn totals(&self) -> ServeTotals {
        self.counters.snapshot()
    }

    /// Compile-cache counters (service-lifetime).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Warm servers currently parked across all pools.
    pub fn pooled(&self) -> usize {
        self.pool.warm()
    }

    /// Jobs currently queued (admitted, not yet run).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Deepest queue backlog observed so far.
    pub fn queue_peak(&self) -> usize {
        self.queue_peak
    }

    /// Service-lifetime job-latency histogram (µs per job).
    pub fn job_latency(&self) -> Histogram {
        lock_unpoisoned(&self.job_micros).clone()
    }
}

fn note_stats(counters: &ServeCounters, stats: &JobStats) {
    counters.attempts.fetch_add(stats.attempts, Ordering::Relaxed);
    counters
        .secret_leaks
        .fetch_add(stats.secret_leaks, Ordering::Relaxed);
}

fn emit_shed(tenant: usize, job: u32) {
    if let Some(sink) = default_sink() {
        let ev = SecurityEvent::JobShed {
            tenant: tenant as u32,
            job,
        };
        if sink.interests().contains(ev.mask_bit()) {
            sink.record(&ev);
        }
    }
}

/// One watchdog-guarded attempt at a job.
enum JobAttempt {
    Ok(JobStats),
    Failed(String),
    TimedOut,
}

/// Resolves one job: bounded same-seed retry around
/// [`run_job_attempt`], mirroring the campaign runner's cell
/// containment.
fn run_job_resolved(
    ctx: &Arc<JobCtx>,
    job: &QueuedJob,
    recorder: Option<&Arc<SpanRecorder>>,
) -> JobOutcome {
    let mut failed_attempts = 0u32;
    loop {
        let give_up = failed_attempts >= ctx.cfg.job_retries;
        match run_job_attempt(ctx, job, recorder.cloned()) {
            JobAttempt::Ok(stats) => {
                return if failed_attempts == 0 {
                    JobOutcome::Done(stats)
                } else {
                    JobOutcome::Retried {
                        n: failed_attempts,
                        stats,
                    }
                };
            }
            JobAttempt::Failed(msg) if give_up => return JobOutcome::Failed { msg },
            JobAttempt::TimedOut if give_up => return JobOutcome::TimedOut,
            JobAttempt::Failed(_) | JobAttempt::TimedOut => failed_attempts += 1,
        }
    }
}

/// Runs one job attempt on a dedicated thread under the job deadline,
/// with the quarantine flag installed (see
/// [`crate::campaign`] — this is the same containment pattern the
/// batch runner uses for cells). On deadline the thread is abandoned
/// *and quarantined*: its remaining counter traffic diverts to the
/// leaked bank and it unleases itself at the next attempt boundary.
fn run_job_attempt(
    ctx: &Arc<JobCtx>,
    job: &QueuedJob,
    recorder: Option<Arc<SpanRecorder>>,
) -> JobAttempt {
    let (tx, rx) = channel();
    let abandoned = Arc::new(AtomicBool::new(false));
    let quarantine = Arc::clone(&abandoned);
    let ctx2 = Arc::clone(ctx);
    let spec = Arc::clone(&job.spec);
    let (tenant, jobno, seed) = (job.tenant, job.job, job.seed);
    let spawned = std::thread::Builder::new()
        .name(format!("job-{tenant}-{jobno}"))
        .spawn(move || {
            let body = || {
                let _job = span::enter_with(SpanKind::Job, || {
                    format!("tenant {tenant} job {jobno} seed {seed:#x}")
                });
                serve_job(&ctx2, seed, &spec)
            };
            let profiled = || match ctx2.profiler.clone() {
                Some(prof) => swsec_vm::profile::with_thread_profiler(prof, body),
                None => body(),
            };
            let result = counters::with_quarantine(quarantine, || {
                catch_unwind(AssertUnwindSafe(|| match recorder {
                    Some(rec) => span::with_recorder(rec, profiled),
                    None => profiled(),
                }))
            });
            let attempt = match result {
                Ok(Ok(stats)) => JobAttempt::Ok(stats),
                Ok(Err(e)) => JobAttempt::Failed(e.message),
                Err(payload) => JobAttempt::Failed(panic_message(payload)),
            };
            // The receiver may have given up on us (deadline): a
            // failed send is the expected way for this thread to
            // retire.
            let _ = tx.send(attempt);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return JobAttempt::Failed(format!("could not spawn job thread: {e}")),
    };
    match rx.recv_timeout(ctx.cfg.job_deadline) {
        Ok(attempt) => {
            let _ = handle.join();
            attempt
        }
        Err(_) => {
            // Quarantine the thread we are about to leak *before*
            // declaring the job dead, so no later window ever overlaps
            // its remaining counter traffic.
            abandoned.store(true, Ordering::Release);
            JobAttempt::TimedOut
        }
    }
}

/// The job body: lease (or boot) a warm server, re-arm it in full,
/// serve the spec's attempts, park the server again.
fn serve_job(ctx: &JobCtx, seed: u64, spec: &JobSpec) -> Result<JobStats, CompileError> {
    let opts = plan_options(&spec.config, seed);
    let key: PoolKey = (spec.source.clone(), opts, spec.config);
    let mut server = match ctx.pool.checkout(&key) {
        Some(server) => {
            ctx.counters.pool_hits.fetch_add(1, Ordering::Relaxed);
            server
        }
        None => {
            ctx.counters.pool_boots.fetch_add(1, Ordering::Relaxed);
            ForkServer::boot(&ctx.cache, &spec.source, spec.config, seed)?
        }
    };
    // Re-arm the lease in full: serve mode, fuel, event sink (the
    // *current* process default, not whatever was installed when this
    // server was booted), and the round's profiler. Nothing of the
    // previous lease survives — the satellite guarantee the
    // interleaved-tenant differential test pins down.
    server.set_mode(ServeMode::from_fork_flag(ctx.cfg.fork_server));
    server.set_fuel(ctx.cfg.fuel);
    server.set_event_sink(default_sink());
    server.set_profiler(swsec_vm::profile::default_profiler());

    let mut stats = JobStats::default();
    for i in 0..spec.attempts {
        if counters::thread_quarantined() {
            // The watchdog abandoned this job mid-flight. Detach from
            // telemetry and bail at the attempt boundary — the leased
            // server dies with this thread rather than rejoining the
            // pool in unknown shape.
            server.set_event_sink(None);
            server.set_profiler(None);
            return Err(CompileError {
                message: format!("job abandoned by deadline watchdog after {i} attempts"),
            });
        }
        let len = 1 + (derive(seed, &[u64::from(i), 1]) % u64::from(spec.max_input.max(1))) as usize;
        let fill = b'A' + (derive(seed, &[u64::from(i), 2]) % 26) as u8;
        let input = vec![fill; len];
        let outcome = server.execute(seed, &input)?;
        stats.attempts += 1;
        match outcome.outcome {
            RunOutcome::Halted(_) => stats.halted += 1,
            RunOutcome::Fault(_) => stats.faulted += 1,
            RunOutcome::OutOfFuel => stats.out_of_fuel += 1,
            RunOutcome::Blocked { .. } => stats.blocked += 1,
        }
        if outcome.emitted(1, b"SECRET") {
            stats.secret_leaks += 1;
        }
    }
    // Flush pending machine stats before parking, so the whole job is
    // accounted inside this round's guarded window — a parked server
    // carries zero unabsorbed counters across rounds.
    server.flush_counters();
    if !ctx.pool.checkin(key, server) {
        ctx.counters.pool_drops.fetch_add(1, Ordering::Relaxed);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::VICTIM_SMASH;

    fn tenant(name: &str, seed: u64, priority: u8, quota: usize) -> TenantConfig {
        TenantConfig {
            name: name.to_string(),
            seed,
            priority,
            quota,
        }
    }

    fn quick_spec() -> JobSpec {
        JobSpec {
            source: VICTIM_SMASH.to_string(),
            config: DefenseConfig::none(),
            attempts: 8,
            max_input: 40,
        }
    }

    #[test]
    fn quota_rejects_at_admission() {
        let mut svc = CampaignService::new(ServeConfig::default());
        let t = svc.register_tenant(tenant("t0", 1, 1, 2));
        assert!(svc.submit(t, quick_spec()).is_ok());
        assert!(svc.submit(t, quick_spec()).is_ok());
        let err = svc.submit(t, quick_spec()).unwrap_err();
        assert_eq!(err, RejectReason::QuotaExceeded { quota: 2 });
        // The rejected job is recorded under its consumed index.
        let id = JobId {
            tenant: t,
            job: 2,
        };
        assert_eq!(svc.outcome(id), Some(JobOutcome::Rejected(err)));
        assert_eq!(svc.totals().jobs_rejected, 1);
        assert_eq!(svc.pending(), 2);
    }

    #[test]
    fn full_queue_sheds_strictly_lower_priority_first() {
        let mut svc = CampaignService::new(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let low = svc.register_tenant(tenant("low", 1, 0, 10));
        let high = svc.register_tenant(tenant("high", 2, 5, 10));
        let low0 = svc.submit(low, quick_spec()).unwrap();
        let _low1 = svc.submit(low, quick_spec()).unwrap();
        // Queue full; a high-priority arrival sheds the *oldest* low
        // job.
        let high0 = svc.submit(high, quick_spec()).unwrap();
        assert_eq!(svc.outcome(low0), Some(JobOutcome::Shed));
        assert_eq!(svc.outcome(high0), Some(JobOutcome::Pending));
        assert_eq!(svc.totals().jobs_shed, 1);
        // Another high arrival sheds the remaining low job...
        let _high1 = svc.submit(high, quick_spec()).unwrap();
        // ...but with only high-priority work queued, the next is
        // rejected (ties never shed).
        let err = svc.submit(high, quick_spec()).unwrap_err();
        assert_eq!(err, RejectReason::QueueFull { capacity: 2 });
        assert_eq!(svc.totals().jobs_shed, 2);
        assert_eq!(svc.totals().jobs_rejected, 1);
        assert_eq!(svc.pending(), 2);
    }

    #[test]
    fn single_tenant_round_trips() {
        let mut svc = CampaignService::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let t = svc.register_tenant(tenant("t0", 0xBEEF, 1, 16));
        let a = svc.submit(t, quick_spec()).unwrap();
        let b = svc.submit(t, quick_spec()).unwrap();
        let round = svc.run();
        assert_eq!(round.jobs, 2);
        assert_eq!(round.totals.jobs_done, 2);
        assert_eq!(round.totals.attempts, 16);
        let sa = svc.outcome(a).unwrap().stats().expect("job a completed");
        assert_eq!(sa.attempts, 8);
        assert!(svc.outcome(b).unwrap().is_ok());
        assert_eq!(svc.pending(), 0);
        // The service survives the round: submit and run again, with
        // the pool now warm for this (program, opts, config).
        let warm = svc.pooled();
        assert!(warm >= 1, "no server parked after the round");
        let c = svc.submit(t, quick_spec()).unwrap();
        let round2 = svc.run();
        assert_eq!(round2.jobs, 1);
        assert!(round2.totals.pool_hits >= 1, "warm server not leased");
        assert!(svc.outcome(c).unwrap().is_ok());
    }

    #[test]
    fn job_seeds_are_a_pure_function_of_the_tenant_namespace() {
        // Tenant B's presence must not perturb tenant A's seeds or
        // results: run A alone, then A interleaved with B, and compare
        // A's table bytes.
        let spec = quick_spec;
        let solo = {
            let mut svc = CampaignService::new(ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            });
            let a = svc.register_tenant(tenant("a", 7, 1, 16));
            for _ in 0..3 {
                svc.submit(a, spec()).unwrap();
            }
            svc.run();
            svc.render_tenant(a)
        };
        let mixed = {
            let mut svc = CampaignService::new(ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            });
            let a = svc.register_tenant(tenant("a", 7, 1, 16));
            let b = svc.register_tenant(tenant("b", 8, 1, 16));
            for _ in 0..3 {
                svc.submit(a, spec()).unwrap();
                svc.submit(b, spec()).unwrap();
            }
            svc.run();
            svc.render_tenant(a)
        };
        assert_eq!(solo, mixed);
    }

    #[test]
    fn unknown_job_is_none() {
        let mut svc = CampaignService::new(ServeConfig::default());
        let t = svc.register_tenant(tenant("t0", 1, 1, 4));
        assert_eq!(
            svc.outcome(JobId { tenant: t, job: 9 }),
            None
        );
    }
}
