//! The campaign runner: every experiment, one pass, any number of
//! workers, byte-identical output.
//!
//! A *campaign* executes a selected set of [`Experiment`]s — by default
//! the full E1–E15 suite — by decomposing each into its independent
//! cells (the E3 matrix runs one cell per technique × configuration
//! pair, the E4 sweep one per brute-force campaign, …) and draining
//! the cell pool on a work-stealing thread pool.
//!
//! Three properties make the result reproducible:
//!
//! * every random choice in a cell derives from
//!   [`CampaignConfig::master_seed`] through the SplitMix64 path
//!   `derive(master, [experiment, cell])` — a pure function of the
//!   *indices*, never of scheduling order;
//! * cell outputs land in pre-assigned slots and are assembled in
//!   experiment/cell order;
//! * [`CampaignReport::render`] is a pure function of the assembled
//!   [`Report`]s — wall-clock timings, worker count and cache counters
//!   are reported separately via [`CampaignReport::summary`].
//!
//! Hence `render()` is byte-identical for any worker count, which
//! `tests/campaign.rs` asserts for 1, 4 and 8 workers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use swsec_obs::MetricsRegistry;
use swsec_rng::derive;
use swsec_vm::counters::{self, VmCounters};

use crate::cache::{CacheStats, ProgramCache};
use crate::experiments::{registry, Experiment};
use crate::report::{ExperimentId, Report, Table};

/// Everything a campaign run depends on. One master seed drives every
/// stochastic driver in the suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// The root of every random choice made anywhere in the campaign.
    pub master_seed: u64,
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Entropy levels the E4 ASLR sweep visits.
    pub aslr_bits_levels: Vec<u8>,
    /// Brute-force campaigns averaged per E4 entropy level.
    pub aslr_trials: u32,
    /// Oracle-query budget per E14 canary recovery.
    pub oracle_budget: u32,
    /// Experiments to run; empty means the full registry.
    pub experiments: Vec<ExperimentId>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            master_seed: 0x2016_DA7E, // DATE 2016
            workers: 0,
            aslr_bits_levels: vec![2, 4, 6, 8],
            aslr_trials: 6,
            oracle_budget: 2048,
            experiments: Vec::new(),
        }
    }
}

impl CampaignConfig {
    /// A configuration sized for tests and smoke runs: fewer and
    /// smaller E4 brute-force campaigns, everything else intact.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            aslr_bits_levels: vec![2, 4],
            aslr_trials: 3,
            ..CampaignConfig::default()
        }
    }

    /// The experiments this campaign will run, in presentation order.
    pub fn selected(&self) -> Vec<&'static dyn Experiment> {
        registry()
            .iter()
            .copied()
            .filter(|e| self.experiments.is_empty() || self.experiments.contains(&e.id()))
            .collect()
    }

    /// The seed for cell `cell` of experiment `id`: a pure function of
    /// the indices, so results never depend on which worker ran what.
    pub fn cell_seed(&self, id: ExperimentId, cell: usize) -> u64 {
        derive(self.master_seed, &[id.seed_path(), cell as u64])
    }
}

/// Shared per-campaign state handed to every cell: today the compile
/// cache, so each distinct victim/options pair compiles exactly once
/// per campaign no matter how many cells launch it.
#[derive(Debug, Default)]
pub struct CampaignCtx {
    /// The campaign-wide program cache.
    pub cache: ProgramCache,
}

impl CampaignCtx {
    /// A fresh context with an empty cache.
    pub fn new() -> CampaignCtx {
        CampaignCtx::default()
    }
}

/// The boxed per-cell progress callback type held by
/// [`CampaignTelemetry::progress`].
pub type ProgressFn = Box<dyn Fn(&CellProgress) + Send + Sync>;

/// A progress notification for one finished cell, delivered to
/// [`CampaignTelemetry::progress`] from whichever worker ran it.
#[derive(Debug, Clone, Copy)]
pub struct CellProgress {
    /// The experiment the cell belongs to.
    pub experiment: ExperimentId,
    /// The cell index within that experiment.
    pub cell: usize,
    /// Cells finished so far, across the whole campaign (including
    /// this one). Monotone per run, but the order cells finish in is
    /// scheduling-dependent.
    pub completed: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// How long this cell took.
    pub elapsed: Duration,
}

/// Optional observability hooks for a campaign run, kept apart from
/// [`CampaignConfig`] so the config stays a plain comparable value.
///
/// Attaching telemetry never changes what the campaign computes:
/// [`CampaignReport::render`] is byte-identical with or without it.
#[derive(Default)]
pub struct CampaignTelemetry {
    /// Called once per finished cell, from the worker that ran it.
    /// Callbacks run concurrently, so the callee synchronises its own
    /// state (printing a progress line needs nothing extra).
    pub progress: Option<ProgressFn>,
    /// Registry absorbing the run's counters and per-cell time
    /// histogram when the campaign finishes (see
    /// [`absorb_into`](CampaignReport::absorb_into) for the names).
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl std::fmt::Debug for CampaignTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignTelemetry")
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl CampaignTelemetry {
    /// Telemetry that observes nothing (what [`run_campaign`] uses).
    pub fn none() -> CampaignTelemetry {
        CampaignTelemetry::default()
    }

    /// Sets the per-cell progress callback.
    pub fn on_progress(
        mut self,
        f: impl Fn(&CellProgress) + Send + Sync + 'static,
    ) -> CampaignTelemetry {
        self.progress = Some(Box::new(f));
        self
    }

    /// Sets the registry that absorbs the run's metrics.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> CampaignTelemetry {
        self.metrics = Some(registry);
        self
    }
}

/// Where one cell's time went, captured per cell (finer-grained than
/// [`ExperimentTiming`], which sums these per experiment).
#[derive(Debug, Clone, Copy)]
pub struct CellTiming {
    /// The experiment the cell belongs to.
    pub experiment: ExperimentId,
    /// The cell index within that experiment.
    pub cell: usize,
    /// Busy time for that one cell.
    pub elapsed: Duration,
}

/// Where one experiment's time went (worker-busy time, summed across
/// its cells — not wall-clock, which overlaps under parallelism).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentTiming {
    /// The experiment.
    pub id: ExperimentId,
    /// Number of cells executed.
    pub cells: usize,
    /// Total busy time across all its cells.
    pub busy: Duration,
}

/// The output of [`run_campaign`]: the assembled reports plus the
/// non-deterministic run metadata, kept strictly apart.
#[derive(Debug)]
pub struct CampaignReport {
    /// One report per selected experiment, in presentation order.
    pub reports: Vec<Report>,
    /// Per-experiment busy time (excluded from [`render`](Self::render)).
    pub timings: Vec<ExperimentTiming>,
    /// Per-cell busy time, in slot (experiment-major) order. Like every
    /// timing, excluded from [`render`](Self::render).
    pub cell_timings: Vec<CellTiming>,
    /// Compile-cache counters at the end of the run.
    pub cache: CacheStats,
    /// VM hot-path counters (instructions, icache, TLB) accumulated by
    /// every machine the campaign's cells dropped. Process-global
    /// deltas: concurrent VM activity outside the campaign leaks in,
    /// so this is run metadata, never part of [`render`](Self::render).
    pub vm: VmCounters,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock for the whole campaign.
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Renders every report, deterministically: a pure function of the
    /// structured results, independent of worker count and timing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// The run-metadata table: busy time per experiment, cache
    /// counters, worker count. Deliberately *not* part of
    /// [`render`](Self::render) — it varies run to run.
    pub fn summary(&self) -> Table {
        let pct = |r: Option<f64>| match r {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "n/a".to_string(),
        };
        let mut t = Table::new(
            format!(
                "campaign: {} workers, {:.2}s wall, cache {} hits / {} misses / {} parses, \
                 vm {} instr, icache {} hit, tlb {} hit",
                self.workers,
                self.elapsed.as_secs_f64(),
                self.cache.hits,
                self.cache.misses,
                self.cache.parses,
                self.vm.instructions,
                pct(self.vm.icache_hit_rate()),
                pct(self.vm.tlb_hit_rate()),
            ),
            &["experiment", "cells", "busy"],
        );
        for timing in &self.timings {
            t.row(vec![
                timing.id.to_string(),
                timing.cells.to_string(),
                format!("{:.1}ms", timing.busy.as_secs_f64() * 1e3),
            ]);
        }
        t
    }

    /// Folds the run's metadata into a metrics registry:
    ///
    /// * counters `campaign.runs`, `campaign.cells`, `campaign.workers`,
    ///   `cache.hits` / `cache.misses` / `cache.parses`, and
    ///   `vm.instructions` / `vm.icache.hits` / `vm.icache.misses` /
    ///   `vm.tlb.hits` / `vm.tlb.misses`;
    /// * histogram `campaign.cell_micros` with one observation per cell.
    ///
    /// Called automatically by [`run_campaign_with`] when
    /// [`CampaignTelemetry::metrics`] is set.
    pub fn absorb_into(&self, registry: &MetricsRegistry) {
        registry.counter("campaign.runs", 1);
        registry.counter("campaign.cells", self.cell_timings.len() as u64);
        registry.counter("campaign.workers", self.workers as u64);
        registry.counter("cache.hits", self.cache.hits);
        registry.counter("cache.misses", self.cache.misses);
        registry.counter("cache.parses", self.cache.parses);
        registry.counter("vm.instructions", self.vm.instructions);
        registry.counter("vm.icache.hits", self.vm.icache_hits);
        registry.counter("vm.icache.misses", self.vm.icache_misses);
        registry.counter("vm.tlb.hits", self.vm.tlb_hits);
        registry.counter("vm.tlb.misses", self.vm.tlb_misses);
        for cell in &self.cell_timings {
            registry.observe("campaign.cell_micros", cell.elapsed.as_micros() as u64);
        }
    }
}

/// One schedulable unit: cell `cell` of `exps[exp]`, writing `slot`.
#[derive(Debug, Clone, Copy)]
struct Task {
    exp: usize,
    cell: usize,
    slot: usize,
}

/// Runs the selected experiments across a work-stealing pool and
/// assembles their reports.
///
/// The cell pool is distributed round-robin over per-worker deques;
/// each worker pops its own deque from the front and steals from the
/// back of the others when it runs dry. Stealing only changes *who*
/// runs a cell, never its seed or its output slot, so the assembled
/// reports — and hence [`CampaignReport::render`] — are identical for
/// every worker count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_with(cfg, &CampaignTelemetry::none())
}

/// [`run_campaign`] with observability hooks: a live per-cell progress
/// callback and a metrics registry that absorbs the run's counters and
/// per-cell timing histogram. The hooks observe the run without
/// influencing it — the rendered reports stay byte-identical.
pub fn run_campaign_with(cfg: &CampaignConfig, telemetry: &CampaignTelemetry) -> CampaignReport {
    let started = Instant::now();
    let vm_before = counters::snapshot();
    let exps = cfg.selected();
    let ctx = CampaignCtx::new();

    // Lay out one result slot per cell, experiment-major.
    let cell_counts: Vec<usize> = exps.iter().map(|e| e.cells(cfg).max(1)).collect();
    let mut tasks = Vec::new();
    let mut slot = 0usize;
    for (exp, &cells) in cell_counts.iter().enumerate() {
        for cell in 0..cells {
            tasks.push(Task { exp, cell, slot });
            slot += 1;
        }
    }
    let total_slots = slot;

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.workers
    };
    let workers = workers.clamp(1, total_slots.max(1));

    let queues: Vec<Mutex<VecDeque<Task>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % workers].lock().expect("queue lock").push_back(task);
    }

    let slots: Vec<Mutex<Option<Vec<Table>>>> =
        (0..total_slots).map(|_| Mutex::new(None)).collect();
    let busy_nanos: Vec<AtomicU64> = (0..exps.len()).map(|_| AtomicU64::new(0)).collect();
    let cell_nanos: Vec<AtomicU64> = (0..total_slots).map(|_| AtomicU64::new(0)).collect();
    let completed = AtomicUsize::new(0);

    let ctx = &ctx;
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let busy_nanos = &busy_nanos;
            let cell_nanos = &cell_nanos;
            let completed = &completed;
            let exps = &exps;
            scope.spawn(move || loop {
                // Own deque first (front), then steal (back) — the
                // classic discipline keeps stolen work coarse.
                let task = queues[me]
                    .lock()
                    .expect("queue lock")
                    .pop_front()
                    .or_else(|| {
                        (1..workers).find_map(|d| {
                            queues[(me + d) % workers]
                                .lock()
                                .expect("queue lock")
                                .pop_back()
                        })
                    });
                let Some(task) = task else { break };
                let cell_started = Instant::now();
                let out = exps[task.exp].run_cell(cfg, ctx, task.cell);
                let elapsed = cell_started.elapsed();
                let nanos = elapsed.as_nanos() as u64;
                busy_nanos[task.exp].fetch_add(nanos, Ordering::Relaxed);
                cell_nanos[task.slot].store(nanos, Ordering::Relaxed);
                *slots[task.slot].lock().expect("slot lock") = Some(out);
                if let Some(progress) = telemetry.progress.as_ref() {
                    progress(&CellProgress {
                        experiment: exps[task.exp].id(),
                        cell: task.cell,
                        completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                        total: total_slots,
                        elapsed,
                    });
                }
            });
        }
    });

    // Assemble in experiment order from the slot layout.
    let mut reports = Vec::with_capacity(exps.len());
    let mut timings = Vec::with_capacity(exps.len());
    let mut cell_timings = Vec::with_capacity(total_slots);
    let mut base = 0usize;
    for (exp, &cells) in cell_counts.iter().enumerate() {
        let outputs: Vec<Vec<Table>> = (0..cells)
            .map(|cell| {
                slots[base + cell]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("every cell ran")
            })
            .collect();
        for cell in 0..cells {
            cell_timings.push(CellTiming {
                experiment: exps[exp].id(),
                cell,
                elapsed: Duration::from_nanos(cell_nanos[base + cell].load(Ordering::Relaxed)),
            });
        }
        base += cells;
        reports.push(exps[exp].assemble(cfg, outputs));
        timings.push(ExperimentTiming {
            id: exps[exp].id(),
            cells,
            busy: Duration::from_nanos(busy_nanos[exp].load(Ordering::Relaxed)),
        });
    }

    let report = CampaignReport {
        reports,
        timings,
        cell_timings,
        cache: ctx.cache.stats(),
        vm: counters::snapshot().since(vm_before),
        workers,
        elapsed: started.elapsed(),
    };
    if let Some(registry) = telemetry.metrics.as_deref() {
        report.absorb_into(registry);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        // E10 + E12 are fast, deterministic, and exercise two cells'
        // worth of scheduling.
        CampaignConfig {
            experiments: vec![ExperimentId::new(10), ExperimentId::new(12)],
            ..CampaignConfig::quick()
        }
    }

    #[test]
    fn reports_come_back_in_presentation_order() {
        let mut cfg = tiny();
        // Selection order in the config must not matter.
        cfg.experiments.reverse();
        let r = run_campaign(&cfg);
        assert_eq!(r.reports.len(), 2);
        assert_eq!(r.reports[0].id, ExperimentId::new(10));
        assert_eq!(r.reports[1].id, ExperimentId::new(12));
    }

    #[test]
    fn worker_count_does_not_change_the_render() {
        let mut cfg = tiny();
        cfg.workers = 1;
        let one = run_campaign(&cfg).render();
        cfg.workers = 3;
        let three = run_campaign(&cfg).render();
        assert_eq!(one, three);
    }

    #[test]
    fn cell_seeds_are_per_experiment_and_per_cell() {
        let cfg = CampaignConfig::default();
        let a = cfg.cell_seed(ExperimentId::new(3), 0);
        let b = cfg.cell_seed(ExperimentId::new(3), 1);
        let c = cfg.cell_seed(ExperimentId::new(4), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cfg.cell_seed(ExperimentId::new(3), 0));
    }

    #[test]
    fn empty_selection_means_everything() {
        let cfg = CampaignConfig::default();
        assert_eq!(cfg.selected().len(), registry().len());
    }

    #[test]
    fn telemetry_observes_without_changing_the_render() {
        let cfg = tiny();
        let baseline = run_campaign(&cfg).render();

        let seen = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(MetricsRegistry::new());
        let telemetry = CampaignTelemetry::none()
            .on_progress({
                let seen = seen.clone();
                move |p| {
                    assert!(p.completed >= 1 && p.completed <= p.total);
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            })
            .with_metrics(registry.clone());
        let report = run_campaign_with(&cfg, &telemetry);

        // Same bytes with hooks attached.
        assert_eq!(report.render(), baseline);

        // The callback fired once per cell, and every cell has a timing.
        let total: usize = report.timings.iter().map(|t| t.cells).sum();
        assert_eq!(seen.load(Ordering::Relaxed), total);
        assert_eq!(report.cell_timings.len(), total);

        // The registry absorbed the run.
        assert_eq!(registry.counter_value("campaign.runs"), 1);
        assert_eq!(registry.counter_value("campaign.cells"), total as u64);
        assert!(registry.counter_value("vm.instructions") > 0);
        let h = registry.histogram("campaign.cell_micros").expect("histogram");
        assert_eq!(h.count(), total as u64);
    }

    #[test]
    fn per_cell_timings_follow_the_slot_layout() {
        let cfg = tiny();
        let report = run_campaign(&cfg);
        // Experiment-major order, cells numbered from zero within each.
        let mut expect = Vec::new();
        for t in &report.timings {
            for cell in 0..t.cells {
                expect.push((t.id, cell));
            }
        }
        let got: Vec<_> = report
            .cell_timings
            .iter()
            .map(|c| (c.experiment, c.cell))
            .collect();
        assert_eq!(got, expect);
        // Per-experiment busy time is the sum of its cells (both sides
        // were computed from the same per-cell nanos).
        for t in &report.timings {
            let sum: Duration = report
                .cell_timings
                .iter()
                .filter(|c| c.experiment == t.id)
                .map(|c| c.elapsed)
                .sum();
            assert_eq!(sum, t.busy);
        }
    }
}
