//! The campaign runner: every experiment, one pass, any number of
//! workers, byte-identical output — and fault-tolerant: a panicking,
//! stalling or flaky cell is contained, retried and reported, never
//! allowed to hang the pool or poison its locks.
//!
//! A *campaign* executes a selected set of [`Experiment`]s — by default
//! the full E1–E16 suite — by decomposing each into its independent
//! cells (the E3 matrix runs one cell per technique × configuration
//! pair, the E4 sweep one per brute-force campaign, …) and draining
//! the cell pool on a work-stealing thread pool.
//!
//! Three properties make the result reproducible:
//!
//! * every random choice in a cell derives from
//!   [`CampaignConfig::master_seed`] through the SplitMix64 path
//!   `derive(master, [experiment, cell])` — a pure function of the
//!   *indices*, never of scheduling order;
//! * cell outputs land in pre-assigned slots and are assembled in
//!   experiment/cell order;
//! * [`CampaignReport::render`] is a pure function of the assembled
//!   [`Report`]s and the typed cell outcomes — wall-clock timings,
//!   worker count and cache counters are reported separately via
//!   [`CampaignReport::summary`].
//!
//! Hence `render()` is byte-identical for any worker count, which
//! `tests/campaign.rs` asserts for 1, 4 and 8 workers.
//!
//! ## The failure model
//!
//! Each cell attempt runs on its own watchdogged thread:
//!
//! * a **panic** is caught (`catch_unwind`) and recorded;
//! * a cell that exceeds [`CampaignConfig::cell_deadline`] is
//!   abandoned (the attempt thread is detached and leaked — the
//!   campaign cannot cancel arbitrary code, only stop waiting for it)
//!   and recorded as timed out;
//! * each failed cell is retried up to
//!   [`CampaignConfig::cell_retries`] times with the *same* derived
//!   seed, so a retry can only change the result for cells that are
//!   impure by design (the fault-demo flaky cell) or flaky by
//!   accident — which is exactly what the `Retried` outcome flags.
//!
//! Outcomes surface three ways: typed [`CellRecord`]s on the report
//! (with a rendered "failed cells" table — present only when something
//! failed, so healthy renders are unchanged), a
//! [`SecurityEvent::CellFailed`] event per failed cell on the process
//! default sink, and `campaign.cells_failed` / `campaign.cells_retried`
//! counters via [`CampaignReport::absorb_into`]. Experiments with
//! failed cells get a deterministic placeholder report instead of
//! feeding partial data to `assemble`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use swsec_obs::span::{self, SpanCollector, SpanRecord, SpanRecorder};
use swsec_obs::{default_sink, Histogram, MetricsRegistry, SecurityEvent, SpanKind, SpanMask};
use swsec_rng::derive;
use swsec_vm::counters::{self, VmCounters};
use swsec_vm::profile::Profiler;

use crate::cache::{CacheStats, ProgramCache};
use crate::experiments::{registry, Experiment};
use crate::report::{ExperimentId, Report, Table};

/// Locks a mutex, recovering the guard even if a previous holder
/// panicked. Every lock in the runner protects plain data whose
/// invariants hold between operations (a deque of tasks, an `Option`
/// slot), so a poisoned lock carries no torn state — propagating the
/// poison would only turn one contained cell panic into a cascade that
/// takes down every worker behind it.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serializes the VM-counter snapshot windows of concurrent campaigns.
///
/// `swsec_vm::counters` is process-global and delta-based: a campaign
/// reads a snapshot, runs, reads again and reports the difference. Two
/// campaigns with *overlapping* windows would each absorb the other's
/// instructions — every shared instruction counted twice across their
/// reports. Holding this lock across the window makes the windows
/// disjoint, so the sum of concurrent campaigns' deltas never exceeds
/// the true process total. Cells leaked by the deadline watchdog are
/// kept out of later windows by quarantine: the watchdog flips the
/// attempt's shared flag when it abandons it, and from then on the
/// leaked thread's counter updates divert to the leaked bank
/// ([`counters::leaked_snapshot`]) instead of the live totals.
/// Poison-tolerant like every runner lock. Shared with the campaign
/// service (`crate::serve`), whose rounds window the same globals.
pub(crate) static VM_STAT_GUARD: Mutex<()> = Mutex::new(());

/// Everything a campaign run depends on. One master seed drives every
/// stochastic driver in the suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// The root of every random choice made anywhere in the campaign.
    pub master_seed: u64,
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Entropy levels the E4 ASLR sweep visits.
    pub aslr_bits_levels: Vec<u8>,
    /// Brute-force campaigns averaged per E4 entropy level.
    pub aslr_trials: u32,
    /// Oracle-query budget per E14 canary recovery.
    pub oracle_budget: u32,
    /// Experiments to run; empty means the full registry.
    pub experiments: Vec<ExperimentId>,
    /// Wall-clock budget for one cell attempt; an attempt that exceeds
    /// it is abandoned and the cell recorded
    /// [`CellOutcome::TimedOut`]. Generous by default — the deadline
    /// exists to keep a diverging cell from hanging the campaign, not
    /// to race healthy ones.
    pub cell_deadline: Duration,
    /// How many times a failed cell is re-attempted (same seed) before
    /// its failure is recorded. `0` disables retry.
    pub cell_retries: u32,
    /// Serve guessing-attack attempts from a boot-time snapshot
    /// ([`crate::harness::ServeMode::Fork`], the default) instead of
    /// rebuilding the machine per attempt. A pure speedup: renders are
    /// byte-identical either way.
    pub fork_server: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            master_seed: 0x2016_DA7E, // DATE 2016
            workers: 0,
            aslr_bits_levels: vec![2, 4, 6, 8],
            aslr_trials: 6,
            oracle_budget: 2048,
            experiments: Vec::new(),
            cell_deadline: Duration::from_secs(120),
            cell_retries: 1,
            fork_server: true,
        }
    }
}

impl CampaignConfig {
    /// A configuration sized for tests and smoke runs: fewer and
    /// smaller E4 brute-force campaigns, everything else intact.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            aslr_bits_levels: vec![2, 4],
            aslr_trials: 3,
            ..CampaignConfig::default()
        }
    }

    /// The experiments this campaign will run, in presentation order.
    pub fn selected(&self) -> Vec<&'static dyn Experiment> {
        registry()
            .iter()
            .copied()
            .filter(|e| self.experiments.is_empty() || self.experiments.contains(&e.id()))
            .collect()
    }

    /// The seed for cell `cell` of experiment `id`: a pure function of
    /// the indices, so results never depend on which worker ran what.
    pub fn cell_seed(&self, id: ExperimentId, cell: usize) -> u64 {
        derive(self.master_seed, &[id.seed_path(), cell as u64])
    }

    /// How guessing-attack cells execute their attempts (snapshot
    /// restore vs per-attempt rebuild), from [`Self::fork_server`].
    pub fn serve_mode(&self) -> crate::harness::ServeMode {
        crate::harness::ServeMode::from_fork_flag(self.fork_server)
    }
}

/// Shared per-campaign state handed to every cell: today the compile
/// cache, so each distinct victim/options pair compiles exactly once
/// per campaign no matter how many cells launch it.
#[derive(Debug, Default)]
pub struct CampaignCtx {
    /// The campaign-wide program cache.
    pub cache: ProgramCache,
}

impl CampaignCtx {
    /// A fresh context with an empty cache.
    pub fn new() -> CampaignCtx {
        CampaignCtx::default()
    }
}

/// How one cell ended, after containment and retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The first attempt produced the cell's tables.
    Ok,
    /// A later attempt succeeded after `n` failed ones. The result is
    /// used normally; the outcome flags the cell as flaky.
    Retried {
        /// How many attempts failed before the one that succeeded.
        n: u32,
    },
    /// Every attempt panicked; `msg` is the last panic payload.
    Panicked {
        /// The panic message (or a placeholder for non-string payloads).
        msg: String,
    },
    /// Every attempt outlived [`CampaignConfig::cell_deadline`] and
    /// was abandoned.
    TimedOut,
}

impl CellOutcome {
    /// Whether the cell ultimately produced a result.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok | CellOutcome::Retried { .. })
    }

    /// A deterministic one-line description, used in rendered tables.
    pub fn label(&self) -> String {
        match self {
            CellOutcome::Ok => "ok".to_string(),
            CellOutcome::Retried { n } => format!("ok after {n} failed attempt(s)"),
            CellOutcome::Panicked { msg } => format!("panicked: {msg}"),
            CellOutcome::TimedOut => "timed out".to_string(),
        }
    }
}

/// The typed outcome of one cell, in slot (experiment-major) order on
/// [`CampaignReport::cells`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The experiment the cell belongs to.
    pub experiment: ExperimentId,
    /// The cell index within that experiment.
    pub cell: usize,
    /// How the cell ended.
    pub outcome: CellOutcome,
}

/// The boxed per-cell progress callback type held by
/// [`CampaignTelemetry::progress`].
pub type ProgressFn = Box<dyn Fn(&CellProgress) + Send + Sync>;

/// A progress notification for one finished cell, delivered to
/// [`CampaignTelemetry::progress`] from whichever worker ran it.
#[derive(Debug, Clone, Copy)]
pub struct CellProgress {
    /// The experiment the cell belongs to.
    pub experiment: ExperimentId,
    /// The cell index within that experiment.
    pub cell: usize,
    /// Cells finished so far, across the whole campaign (including
    /// this one). Monotone per run, but the order cells finish in is
    /// scheduling-dependent.
    pub completed: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// How long this cell took (including failed attempts).
    pub elapsed: Duration,
    /// Whether the cell produced a result (see [`CellOutcome::is_ok`]).
    pub ok: bool,
}

/// Optional observability hooks for a campaign run, kept apart from
/// [`CampaignConfig`] so the config stays a plain comparable value.
///
/// Attaching telemetry never changes what the campaign computes:
/// [`CampaignReport::render`] is byte-identical with or without it.
#[derive(Default)]
pub struct CampaignTelemetry {
    /// Called once per finished cell, from the worker that ran it.
    /// Callbacks run concurrently, so the callee synchronises its own
    /// state (printing a progress line needs nothing extra). A panic
    /// in the callback is contained like a cell panic.
    pub progress: Option<ProgressFn>,
    /// Registry absorbing the run's counters and per-cell time
    /// histogram when the campaign finishes (see
    /// [`absorb_into`](CampaignReport::absorb_into) for the names).
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// When set, the run records hierarchical spans of the selected
    /// kinds: a campaign root on track 0, each cell's spans on track
    /// `slot + 1` — tracks follow the deterministic slot layout, never
    /// the worker that happened to run the cell, so
    /// [`CampaignReport::span_tree`] is byte-identical at any worker
    /// count.
    pub spans: Option<SpanMask>,
    /// When set, scoped onto every cell's attempt thread (via
    /// [`swsec_vm::profile::with_thread_profiler`]): every machine a
    /// cell builds samples into it, concurrent VM activity on other
    /// threads never does, and the aggregated profile is deterministic
    /// (sampling is keyed to retired instructions, and counts merge
    /// associatively).
    pub profiler: Option<Arc<Profiler>>,
}

impl std::fmt::Debug for CampaignTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignTelemetry")
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .field("metrics", &self.metrics.is_some())
            .field("spans", &self.spans)
            .field("profiler", &self.profiler.is_some())
            .finish()
    }
}

impl CampaignTelemetry {
    /// Telemetry that observes nothing (what [`run_campaign`] uses).
    pub fn none() -> CampaignTelemetry {
        CampaignTelemetry::default()
    }

    /// Sets the per-cell progress callback.
    pub fn on_progress(
        mut self,
        f: impl Fn(&CellProgress) + Send + Sync + 'static,
    ) -> CampaignTelemetry {
        self.progress = Some(Box::new(f));
        self
    }

    /// Sets the registry that absorbs the run's metrics.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> CampaignTelemetry {
        self.metrics = Some(registry);
        self
    }

    /// Enables span recording for the masked kinds
    /// (see [`SpanMask::DEFAULT`] for the stock selection).
    pub fn with_spans(mut self, mask: SpanMask) -> CampaignTelemetry {
        self.spans = Some(mask);
        self
    }

    /// Attaches a deterministic sampling profiler to every machine the
    /// run builds.
    pub fn with_profiler(mut self, profiler: Arc<Profiler>) -> CampaignTelemetry {
        self.profiler = Some(profiler);
        self
    }
}

/// Where one cell's time went, captured per cell (finer-grained than
/// [`ExperimentTiming`], which sums these per experiment).
#[derive(Debug, Clone, Copy)]
pub struct CellTiming {
    /// The experiment the cell belongs to.
    pub experiment: ExperimentId,
    /// The cell index within that experiment.
    pub cell: usize,
    /// Busy time for that one cell.
    pub elapsed: Duration,
}

/// Where one experiment's time went (worker-busy time, summed across
/// its cells — not wall-clock, which overlaps under parallelism).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentTiming {
    /// The experiment.
    pub id: ExperimentId,
    /// Number of cells executed.
    pub cells: usize,
    /// Total busy time across all its cells.
    pub busy: Duration,
}

/// The output of [`run_campaign`]: the assembled reports plus the
/// non-deterministic run metadata, kept strictly apart.
#[derive(Debug)]
pub struct CampaignReport {
    /// One report per selected experiment, in presentation order. An
    /// experiment with failed cells gets a deterministic placeholder
    /// report (its `assemble` is never fed partial data).
    pub reports: Vec<Report>,
    /// The typed outcome of every cell, in slot (experiment-major)
    /// order.
    pub cells: Vec<CellRecord>,
    /// Experiments whose `assemble` itself panicked (contained like a
    /// cell panic), with the panic message.
    pub assemble_panics: Vec<(ExperimentId, String)>,
    /// Per-experiment busy time (excluded from [`render`](Self::render)).
    pub timings: Vec<ExperimentTiming>,
    /// Per-cell busy time, in slot (experiment-major) order. Like every
    /// timing, excluded from [`render`](Self::render).
    pub cell_timings: Vec<CellTiming>,
    /// Compile-cache counters at the end of the run.
    pub cache: CacheStats,
    /// VM hot-path counters (instructions, icache, TLB) accumulated by
    /// every machine the campaign's cells dropped. Process-global
    /// deltas: concurrent VM activity outside the campaign leaks in,
    /// so this is run metadata, never part of [`render`](Self::render).
    /// Concurrent *campaigns* are serialized (see `VM_STAT_GUARD`) so
    /// their deltas never double-count each other.
    pub vm: VmCounters,
    /// Recorded spans per track, sorted by track then open sequence —
    /// empty unless [`CampaignTelemetry::spans`] was set. Sequence
    /// numbers are per-track logical clocks, so the recorded shape (and
    /// [`span_tree`](Self::span_tree)) is deterministic at any worker
    /// count; only the wall-clock fields vary run to run.
    pub spans: Vec<(u32, Vec<SpanRecord>)>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock for the whole campaign.
    pub elapsed: Duration,
}

impl CampaignReport {
    /// The cells that failed (after retries), in slot order.
    pub fn failed_cells(&self) -> Vec<&CellRecord> {
        self.cells.iter().filter(|c| !c.outcome.is_ok()).collect()
    }

    /// Whether every cell produced a result and every `assemble` ran.
    pub fn all_ok(&self) -> bool {
        self.assemble_panics.is_empty() && self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// The failed-cells table (empty when [`all_ok`](Self::all_ok)).
    pub fn failed_table(&self) -> Table {
        let mut t = Table::new("failed cells", &["experiment", "cell", "outcome"]);
        for rec in self.failed_cells() {
            t.row(vec![
                rec.experiment.to_string(),
                rec.cell.to_string(),
                rec.outcome.label(),
            ]);
        }
        for (id, msg) in &self.assemble_panics {
            t.row(vec![
                id.to_string(),
                "assemble".to_string(),
                format!("panicked: {msg}"),
            ]);
        }
        t
    }

    /// Renders every report, deterministically: a pure function of the
    /// structured results, independent of worker count and timing.
    /// When any cell failed, a "failed cells" table follows the
    /// reports; healthy campaigns render exactly as before.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render());
            out.push('\n');
        }
        if !self.all_ok() {
            out.push_str(&self.failed_table().to_string());
            out.push('\n');
        }
        out
    }

    /// The deterministic rendering of the recorded span forest (see
    /// [`spans`](Self::spans)): indentation from nesting depth,
    /// `[seq a..b]` logical-clock intervals, no wall-clock. Empty when
    /// span recording was off.
    pub fn span_tree(&self) -> String {
        span::render_tree(&self.spans)
    }

    /// The run-metadata table: busy time per experiment, cache
    /// counters, worker count. Deliberately *not* part of
    /// [`render`](Self::render) — it varies run to run.
    pub fn summary(&self) -> Table {
        let pct = |r: Option<f64>| match r {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "n/a".to_string(),
        };
        let mean_dirty = match self.vm.mean_dirty_pages() {
            Some(mean) => format!("{mean:.1}"),
            None => "n/a".to_string(),
        };
        let mut cell_hist = Histogram::new();
        for cell in &self.cell_timings {
            cell_hist.observe(cell.elapsed.as_micros() as u64);
        }
        let mut t = Table::new(
            format!(
                "campaign: {} workers, {:.2}s wall, {} failed cells, \
                 cache {} hits / {} misses / {} parses, \
                 vm {} instr, icache {} hit, tlb {} hit, \
                 tier2 {} blocks / {} entries / {} instr, \
                 snapshot {} restores ({} dirty pages/restore), \
                 cell p50/p90/p99 {}/{}/{}us, prof {} samples",
                self.workers,
                self.elapsed.as_secs_f64(),
                self.failed_cells().len(),
                self.cache.hits,
                self.cache.misses,
                self.cache.parses,
                self.vm.instructions,
                pct(self.vm.icache_hit_rate()),
                pct(self.vm.tlb_hit_rate()),
                self.vm.tier2_compiled,
                self.vm.tier2_hits,
                self.vm.tier2_instructions,
                self.vm.restores,
                mean_dirty,
                cell_hist.quantile_upper_bound(0.50),
                cell_hist.quantile_upper_bound(0.90),
                cell_hist.quantile_upper_bound(0.99),
                self.vm.prof_samples,
            ),
            &["experiment", "cells", "busy"],
        );
        for timing in &self.timings {
            t.row(vec![
                timing.id.to_string(),
                timing.cells.to_string(),
                format!("{:.1}ms", timing.busy.as_secs_f64() * 1e3),
            ]);
        }
        t
    }

    /// Folds the run's metadata into a metrics registry:
    ///
    /// * counters `campaign.runs`, `campaign.cells`, `campaign.workers`,
    ///   `campaign.cells_failed`, `campaign.cells_retried`,
    ///   `cache.hits` / `cache.misses` / `cache.parses` /
    ///   `cache.evictions`, and
    ///   `vm.instructions` / `vm.icache.hits` / `vm.icache.misses` /
    ///   `vm.tlb.hits` / `vm.tlb.misses`,
    ///   `vm.tier2.blocks_compiled` / `vm.tier2.block_hits` /
    ///   `vm.tier2.instructions` / `vm.tier2.side_exits` /
    ///   `vm.tier2.invalidations`, `vm.tier2.ic_hits` /
    ///   `vm.tier2.ic_misses` / `vm.tier2.ic_installs` /
    ///   `vm.tier2.ic_megamorphic`, `vm.snapshot.snapshots` /
    ///   `vm.snapshot.restores` / `vm.snapshot.dirty_pages` /
    ///   `vm.snapshot.bytes_copied`, and `vm.prof.samples` /
    ///   `vm.prof.frames`;
    /// * histogram `campaign.cell_micros` with one observation per cell.
    ///
    /// Called automatically by [`run_campaign_with`] when
    /// [`CampaignTelemetry::metrics`] is set.
    pub fn absorb_into(&self, registry: &MetricsRegistry) {
        registry.counter("campaign.runs", 1);
        registry.counter("campaign.cells", self.cell_timings.len() as u64);
        registry.counter("campaign.workers", self.workers as u64);
        registry.counter("campaign.cells_failed", self.failed_cells().len() as u64);
        registry.counter(
            "campaign.cells_retried",
            self.cells
                .iter()
                .filter(|c| matches!(c.outcome, CellOutcome::Retried { .. }))
                .count() as u64,
        );
        registry.counter("cache.hits", self.cache.hits);
        registry.counter("cache.misses", self.cache.misses);
        registry.counter("cache.parses", self.cache.parses);
        registry.counter("cache.evictions", self.cache.evictions);
        registry.counter("vm.instructions", self.vm.instructions);
        registry.counter("vm.icache.hits", self.vm.icache_hits);
        registry.counter("vm.icache.misses", self.vm.icache_misses);
        registry.counter("vm.tlb.hits", self.vm.tlb_hits);
        registry.counter("vm.tlb.misses", self.vm.tlb_misses);
        registry.counter("vm.tier2.blocks_compiled", self.vm.tier2_compiled);
        registry.counter("vm.tier2.block_hits", self.vm.tier2_hits);
        registry.counter("vm.tier2.instructions", self.vm.tier2_instructions);
        registry.counter("vm.tier2.side_exits", self.vm.tier2_side_exits);
        registry.counter("vm.tier2.invalidations", self.vm.tier2_invalidations);
        registry.counter("vm.tier2.ic_hits", self.vm.tier2_ic_hits);
        registry.counter("vm.tier2.ic_misses", self.vm.tier2_ic_misses);
        registry.counter("vm.tier2.ic_installs", self.vm.tier2_ic_installs);
        registry.counter("vm.tier2.ic_megamorphic", self.vm.tier2_ic_megamorphic);
        registry.counter("vm.snapshot.snapshots", self.vm.snapshots);
        registry.counter("vm.snapshot.restores", self.vm.restores);
        registry.counter("vm.snapshot.dirty_pages", self.vm.restore_dirty_pages);
        registry.counter("vm.snapshot.bytes_copied", self.vm.restore_bytes);
        registry.counter("vm.prof.samples", self.vm.prof_samples);
        registry.counter("vm.prof.frames", self.vm.prof_frames);
        for cell in &self.cell_timings {
            registry.observe("campaign.cell_micros", cell.elapsed.as_micros() as u64);
        }
    }
}

/// One schedulable unit: cell `cell` of `exps[exp]`, writing `slot`.
#[derive(Debug, Clone, Copy)]
struct Task {
    exp: usize,
    cell: usize,
    slot: usize,
}

/// What lands in a result slot once its cell resolves.
#[derive(Debug)]
struct SlotResult {
    /// The cell's tables when it (eventually) succeeded.
    tables: Option<Vec<Table>>,
    outcome: CellOutcome,
}

/// One attempt's resolution, as seen by the watchdog.
enum Attempt {
    Ok(Vec<Table>),
    Panicked(String),
    TimedOut,
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one cell attempt on a dedicated thread, under a deadline.
///
/// The attempt thread is detached: on success or panic it is joined
/// (it has already sent its result); on deadline it is *leaked* — the
/// runner cannot cancel arbitrary code, only stop waiting for it. A
/// scoped thread would force the opposite choice: the scope's implicit
/// join would block on the diverging cell forever.
///
/// Abandoning a thread is not the end of its side effects, so every
/// attempt runs under a shared quarantine flag
/// ([`counters::with_quarantine`]). The watchdog flips the flag the
/// moment it gives up: from then on the leaked thread's machine drops,
/// restores and profiler samples divert to the leaked counter bank
/// instead of the live totals, and machines it builds afterwards skip
/// the process-default sink and profiler — a timed-out cell cannot
/// skew the `vm.*` deltas or telemetry of any later run.
fn run_attempt(
    cfg: &Arc<CampaignConfig>,
    ctx: &Arc<CampaignCtx>,
    exp: &'static dyn Experiment,
    cell: usize,
    recorder: Option<Arc<SpanRecorder>>,
    profiler: Option<Arc<Profiler>>,
) -> Attempt {
    let (tx, rx) = channel();
    let cfg2 = Arc::clone(cfg);
    let ctx2 = Arc::clone(ctx);
    let abandoned = Arc::new(AtomicBool::new(false));
    let quarantine = Arc::clone(&abandoned);
    let spawned = std::thread::Builder::new()
        .name(format!("cell-{}-{cell}", exp.id()))
        .spawn(move || {
            // The cell's span recorder and profiler ride on the attempt
            // thread so everything the cell does — boots, restores,
            // executes — lands on the cell's own track and samples into
            // the campaign's profile, wrapped in a cell span.
            let id = exp.id();
            let body = || {
                let _cell = span::enter_with(SpanKind::Cell, || format!("{id} cell {cell}"));
                exp.run_cell(&cfg2, &ctx2, cell)
            };
            let profiled = || match profiler {
                Some(prof) => swsec_vm::profile::with_thread_profiler(prof, body),
                None => body(),
            };
            let result = counters::with_quarantine(quarantine, || {
                catch_unwind(AssertUnwindSafe(|| match recorder {
                    Some(rec) => span::with_recorder(rec, profiled),
                    None => profiled(),
                }))
            });
            // The receiver may have given up on us (deadline): a failed
            // send is then the expected way for this thread to retire.
            let _ = tx.send(result.map_err(panic_message));
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return Attempt::Panicked(format!("could not spawn cell thread: {e}")),
    };
    match rx.recv_timeout(cfg.cell_deadline) {
        Ok(Ok(tables)) => {
            let _ = handle.join();
            Attempt::Ok(tables)
        }
        Ok(Err(msg)) => {
            let _ = handle.join();
            Attempt::Panicked(msg)
        }
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            // Quarantine the thread we are about to leak *before*
            // declaring the attempt dead, so no later window ever
            // overlaps its remaining counter traffic.
            abandoned.store(true, Ordering::Release);
            Attempt::TimedOut
        }
    }
}

/// Resolves one cell: bounded retry around [`run_attempt`].
fn run_cell_resolved(
    cfg: &Arc<CampaignConfig>,
    ctx: &Arc<CampaignCtx>,
    exp: &'static dyn Experiment,
    cell: usize,
    recorder: Option<&Arc<SpanRecorder>>,
    profiler: Option<&Arc<Profiler>>,
) -> SlotResult {
    let mut failed_attempts = 0u32;
    loop {
        let give_up = failed_attempts >= cfg.cell_retries;
        match run_attempt(cfg, ctx, exp, cell, recorder.cloned(), profiler.cloned()) {
            Attempt::Ok(tables) => {
                let outcome = if failed_attempts == 0 {
                    CellOutcome::Ok
                } else {
                    CellOutcome::Retried { n: failed_attempts }
                };
                return SlotResult {
                    tables: Some(tables),
                    outcome,
                };
            }
            Attempt::Panicked(msg) if give_up => {
                return SlotResult {
                    tables: None,
                    outcome: CellOutcome::Panicked { msg },
                };
            }
            Attempt::TimedOut if give_up => {
                return SlotResult {
                    tables: None,
                    outcome: CellOutcome::TimedOut,
                };
            }
            Attempt::Panicked(_) | Attempt::TimedOut => failed_attempts += 1,
        }
    }
}

/// Runs the selected experiments across a work-stealing pool and
/// assembles their reports.
///
/// The cell pool is distributed round-robin over per-worker deques;
/// each worker pops its own deque from the front and steals from the
/// back of the others when it runs dry. Stealing only changes *who*
/// runs a cell, never its seed or its output slot, so the assembled
/// reports — and hence [`CampaignReport::render`] — are identical for
/// every worker count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_with(cfg, &CampaignTelemetry::none())
}

/// [`run_campaign`] with observability hooks: a live per-cell progress
/// callback and a metrics registry that absorbs the run's counters and
/// per-cell timing histogram. The hooks observe the run without
/// influencing it — the rendered reports stay byte-identical.
pub fn run_campaign_with(cfg: &CampaignConfig, telemetry: &CampaignTelemetry) -> CampaignReport {
    run_campaign_on(cfg, &cfg.selected(), telemetry)
}

/// [`run_campaign_with`] over an explicit experiment list instead of
/// the registry selection — how test-only experiments (e.g. the
/// fault demo, [`crate::faults::FaultyExperiment`]) enter a campaign.
/// `cfg.experiments` is ignored; everything else applies as usual.
pub fn run_campaign_on(
    cfg: &CampaignConfig,
    exps: &[&'static dyn Experiment],
    telemetry: &CampaignTelemetry,
) -> CampaignReport {
    let started = Instant::now();
    // Serialize concurrent campaigns' snapshot windows (see
    // VM_STAT_GUARD): delta-based process-global counters double-count
    // under overlapping windows.
    let _vm_window = lock_unpoisoned(&VM_STAT_GUARD);
    let vm_before = counters::snapshot();
    let collector = telemetry.spans.map(|mask| Arc::new(SpanCollector::new(mask)));
    let shared_cfg = Arc::new(cfg.clone());
    let ctx = Arc::new(CampaignCtx::new());

    // Lay out one result slot per cell, experiment-major.
    let cell_counts: Vec<usize> = exps.iter().map(|e| e.cells(cfg).max(1)).collect();
    let mut tasks = Vec::new();
    let mut slot = 0usize;
    for (exp, &cells) in cell_counts.iter().enumerate() {
        for cell in 0..cells {
            tasks.push(Task { exp, cell, slot });
            slot += 1;
        }
    }
    let total_slots = slot;

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.workers
    };
    let workers = workers.clamp(1, total_slots.max(1));

    // The campaign root span lives on track 0; cells get track
    // `slot + 1` below. Both are functions of the slot layout alone.
    let campaign_span = collector.as_ref().map(|c| {
        c.recorder(0)
            .enter_with(SpanKind::Campaign, || format!("{total_slots} cells"))
    });

    let queues: Vec<Mutex<VecDeque<Task>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        lock_unpoisoned(&queues[i % workers]).push_back(task);
    }

    let slots: Vec<Mutex<Option<SlotResult>>> =
        (0..total_slots).map(|_| Mutex::new(None)).collect();
    let busy_nanos: Vec<AtomicU64> = (0..exps.len()).map(|_| AtomicU64::new(0)).collect();
    let cell_nanos: Vec<AtomicU64> = (0..total_slots).map(|_| AtomicU64::new(0)).collect();
    let completed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let busy_nanos = &busy_nanos;
            let cell_nanos = &cell_nanos;
            let completed = &completed;
            let shared_cfg = &shared_cfg;
            let ctx = &ctx;
            let collector = &collector;
            scope.spawn(move || loop {
                // Own deque first (front), then steal (back) — the
                // classic discipline keeps stolen work coarse.
                let task = lock_unpoisoned(&queues[me]).pop_front().or_else(|| {
                    (1..workers).find_map(|d| lock_unpoisoned(&queues[(me + d) % workers]).pop_back())
                });
                let Some(task) = task else { break };
                let exp = exps[task.exp];
                // The track index comes from the slot, not the worker:
                // stealing moves *who* runs a cell, never where its
                // spans land.
                let recorder = collector
                    .as_ref()
                    .map(|c| c.recorder(task.slot as u32 + 1));
                let cell_started = Instant::now();
                let result = run_cell_resolved(
                    shared_cfg,
                    ctx,
                    exp,
                    task.cell,
                    recorder.as_ref(),
                    telemetry.profiler.as_ref(),
                );
                let elapsed = cell_started.elapsed();
                let nanos = elapsed.as_nanos() as u64;
                busy_nanos[task.exp].fetch_add(nanos, Ordering::Relaxed);
                cell_nanos[task.slot].store(nanos, Ordering::Relaxed);
                let ok = result.outcome.is_ok();
                if !ok {
                    // Surface the failure on the process default sink,
                    // like any other security-relevant event: the
                    // harness observing its own failure model.
                    if let Some(sink) = default_sink() {
                        let ev = SecurityEvent::CellFailed {
                            experiment: exp.id().number(),
                            cell: task.cell as u32,
                        };
                        if sink.interests().contains(ev.mask_bit()) {
                            sink.record(&ev);
                        }
                    }
                }
                *lock_unpoisoned(&slots[task.slot]) = Some(result);
                if let Some(progress) = telemetry.progress.as_ref() {
                    let p = CellProgress {
                        experiment: exp.id(),
                        cell: task.cell,
                        completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                        total: total_slots,
                        elapsed,
                        ok,
                    };
                    // A panicking observer must not take a worker down.
                    let _ = catch_unwind(AssertUnwindSafe(|| progress(&p)));
                }
            });
        }
    });

    drop(campaign_span);
    let spans = collector.as_ref().map(|c| c.take()).unwrap_or_default();

    // Assemble in experiment order from the slot layout.
    let mut reports = Vec::with_capacity(exps.len());
    let mut cells_records = Vec::with_capacity(total_slots);
    let mut assemble_panics = Vec::new();
    let mut timings = Vec::with_capacity(exps.len());
    let mut cell_timings = Vec::with_capacity(total_slots);
    let mut base = 0usize;
    for (exp, &cells) in cell_counts.iter().enumerate() {
        let id = exps[exp].id();
        let mut outputs: Vec<Vec<Table>> = Vec::with_capacity(cells);
        let mut failed: Vec<CellRecord> = Vec::new();
        for cell in 0..cells {
            let result = lock_unpoisoned(&slots[base + cell])
                .take()
                .unwrap_or(SlotResult {
                    tables: None,
                    // Unreachable in practice (workers drain every
                    // queue), but a lost slot must degrade to a failed
                    // cell, not a harness panic.
                    outcome: CellOutcome::Panicked {
                        msg: "cell result missing (worker lost)".to_string(),
                    },
                });
            let record = CellRecord {
                experiment: id,
                cell,
                outcome: result.outcome,
            };
            if let Some(tables) = result.tables {
                outputs.push(tables);
            } else {
                failed.push(record.clone());
            }
            cells_records.push(record);
            cell_timings.push(CellTiming {
                experiment: id,
                cell,
                elapsed: Duration::from_nanos(cell_nanos[base + cell].load(Ordering::Relaxed)),
            });
        }
        base += cells;
        // An experiment missing any cell gets a deterministic
        // placeholder: `assemble` is written against the full cell
        // layout and must never see partial data.
        let report = if failed.is_empty() {
            match catch_unwind(AssertUnwindSafe(|| exps[exp].assemble(cfg, outputs))) {
                Ok(report) => report,
                Err(payload) => {
                    let msg = panic_message(payload);
                    assemble_panics.push((id, msg.clone()));
                    placeholder_report(id, exps[exp].title(), &[], Some(&msg))
                }
            }
        } else {
            placeholder_report(id, exps[exp].title(), &failed, None)
        };
        reports.push(report);
        timings.push(ExperimentTiming {
            id,
            cells,
            busy: Duration::from_nanos(busy_nanos[exp].load(Ordering::Relaxed)),
        });
    }

    let report = CampaignReport {
        reports,
        cells: cells_records,
        assemble_panics,
        timings,
        cell_timings,
        cache: ctx.cache.stats(),
        vm: counters::snapshot().since(vm_before),
        spans,
        workers,
        elapsed: started.elapsed(),
    };
    if let Some(registry) = telemetry.metrics.as_deref() {
        report.absorb_into(registry);
    }
    report
}

/// The deterministic stand-in report for an experiment whose cells (or
/// `assemble`) failed.
fn placeholder_report(
    id: ExperimentId,
    title: &str,
    failed: &[CellRecord],
    assemble_msg: Option<&str>,
) -> Report {
    let mut report = Report::new(id, title);
    let mut t = Table::new("results unavailable", &["cell", "outcome"]);
    for rec in failed {
        t.row(vec![rec.cell.to_string(), rec.outcome.label()]);
    }
    if let Some(msg) = assemble_msg {
        t.row(vec!["assemble".to_string(), format!("panicked: {msg}")]);
    }
    report.tables.push(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultyExperiment;

    fn tiny() -> CampaignConfig {
        // E10 + E12 are fast, deterministic, and exercise two cells'
        // worth of scheduling.
        CampaignConfig {
            experiments: vec![ExperimentId::new(10), ExperimentId::new(12)],
            ..CampaignConfig::quick()
        }
    }

    /// A config whose deadline trips the fault demo's stall cell
    /// quickly while leaving healthy cells untouched.
    fn faulty_cfg(workers: usize) -> CampaignConfig {
        CampaignConfig {
            workers,
            cell_deadline: Duration::from_millis(250),
            cell_retries: 1,
            ..CampaignConfig::quick()
        }
    }

    #[test]
    fn reports_come_back_in_presentation_order() {
        let mut cfg = tiny();
        // Selection order in the config must not matter.
        cfg.experiments.reverse();
        let r = run_campaign(&cfg);
        assert_eq!(r.reports.len(), 2);
        assert_eq!(r.reports[0].id, ExperimentId::new(10));
        assert_eq!(r.reports[1].id, ExperimentId::new(12));
    }

    #[test]
    fn worker_count_does_not_change_the_render() {
        let mut cfg = tiny();
        cfg.workers = 1;
        let one = run_campaign(&cfg).render();
        cfg.workers = 3;
        let three = run_campaign(&cfg).render();
        assert_eq!(one, three);
    }

    #[test]
    fn cell_seeds_are_per_experiment_and_per_cell() {
        let cfg = CampaignConfig::default();
        let a = cfg.cell_seed(ExperimentId::new(3), 0);
        let b = cfg.cell_seed(ExperimentId::new(3), 1);
        let c = cfg.cell_seed(ExperimentId::new(4), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cfg.cell_seed(ExperimentId::new(3), 0));
    }

    #[test]
    fn empty_selection_means_everything() {
        let cfg = CampaignConfig::default();
        assert_eq!(cfg.selected().len(), registry().len());
    }

    #[test]
    fn telemetry_observes_without_changing_the_render() {
        let cfg = tiny();
        let baseline = run_campaign(&cfg).render();

        let seen = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(MetricsRegistry::new());
        let telemetry = CampaignTelemetry::none()
            .on_progress({
                let seen = seen.clone();
                move |p| {
                    assert!(p.completed >= 1 && p.completed <= p.total);
                    assert!(p.ok);
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            })
            .with_metrics(registry.clone());
        let report = run_campaign_with(&cfg, &telemetry);

        // Same bytes with hooks attached.
        assert_eq!(report.render(), baseline);

        // The callback fired once per cell, and every cell has a timing.
        let total: usize = report.timings.iter().map(|t| t.cells).sum();
        assert_eq!(seen.load(Ordering::Relaxed), total);
        assert_eq!(report.cell_timings.len(), total);

        // Every cell resolved Ok and nothing reads as failed.
        assert!(report.all_ok());
        assert!(report.failed_cells().is_empty());

        // The registry absorbed the run.
        assert_eq!(registry.counter_value("campaign.runs"), 1);
        assert_eq!(registry.counter_value("campaign.cells"), total as u64);
        assert_eq!(registry.counter_value("campaign.cells_failed"), 0);
        assert!(registry.counter_value("vm.instructions") > 0);
        let h = registry.histogram("campaign.cell_micros").expect("histogram");
        assert_eq!(h.count(), total as u64);
    }

    #[test]
    fn per_cell_timings_follow_the_slot_layout() {
        let cfg = tiny();
        let report = run_campaign(&cfg);
        // Experiment-major order, cells numbered from zero within each.
        let mut expect = Vec::new();
        for t in &report.timings {
            for cell in 0..t.cells {
                expect.push((t.id, cell));
            }
        }
        let got: Vec<_> = report
            .cell_timings
            .iter()
            .map(|c| (c.experiment, c.cell))
            .collect();
        assert_eq!(got, expect);
        // The outcome records follow the same layout.
        let recs: Vec<_> = report.cells.iter().map(|c| (c.experiment, c.cell)).collect();
        assert_eq!(recs, expect);
        // Per-experiment busy time is the sum of its cells (both sides
        // were computed from the same per-cell nanos).
        for t in &report.timings {
            let sum: Duration = report
                .cell_timings
                .iter()
                .filter(|c| c.experiment == t.id)
                .map(|c| c.elapsed)
                .sum();
            assert_eq!(sum, t.busy);
        }
    }

    #[test]
    fn panicking_and_stalling_cells_are_contained_and_reported() {
        let cfg = faulty_cfg(2);
        let registry = Arc::new(MetricsRegistry::new());
        let telemetry = CampaignTelemetry::none().with_metrics(registry.clone());
        let report = run_campaign_on(&cfg, &[FaultyExperiment::fresh()], &telemetry);

        // The campaign ran to completion and typed every outcome.
        assert_eq!(report.cells.len(), 4);
        let outcome = |cell: usize| &report.cells[cell].outcome;
        assert!(
            matches!(outcome(FaultyExperiment::PANIC_CELL),
                     CellOutcome::Panicked { msg } if msg.contains("injected cell panic")),
            "got {:?}",
            outcome(FaultyExperiment::PANIC_CELL)
        );
        assert_eq!(*outcome(FaultyExperiment::STALL_CELL), CellOutcome::TimedOut);
        assert_eq!(*outcome(FaultyExperiment::OK_CELL), CellOutcome::Ok);
        assert_eq!(
            *outcome(FaultyExperiment::FLAKY_CELL),
            CellOutcome::Retried { n: 1 }
        );

        assert!(!report.all_ok());
        assert_eq!(report.failed_cells().len(), 2);

        // The render names the failures and the placeholder report.
        let render = report.render();
        assert!(render.contains("## failed cells"));
        assert!(render.contains("injected cell panic"));
        assert!(render.contains("timed out"));
        assert!(render.contains("results unavailable"));

        // The metrics registry saw the failure and retry counts.
        assert_eq!(registry.counter_value("campaign.cells_failed"), 2);
        assert_eq!(registry.counter_value("campaign.cells_retried"), 1);
    }

    #[test]
    fn failure_renders_are_deterministic_across_worker_counts() {
        // Fresh experiment instances per run: the flaky cell's attempt
        // state restarts, so both runs see the same failure pattern.
        let one = run_campaign_on(
            &faulty_cfg(1),
            &[FaultyExperiment::fresh()],
            &CampaignTelemetry::none(),
        );
        let four = run_campaign_on(
            &faulty_cfg(4),
            &[FaultyExperiment::fresh()],
            &CampaignTelemetry::none(),
        );
        assert_eq!(one.render(), four.render());
        assert_eq!(one.cells, four.cells);
    }

    #[test]
    fn cell_failures_reach_the_default_event_sink() {
        use swsec_obs::{clear_default_sink, set_default_sink, CountingSink};

        let sink = Arc::new(CountingSink::new());
        let before = sink.counts().cell_failed;
        set_default_sink(sink.clone());
        let report = run_campaign_on(
            &faulty_cfg(2),
            &[FaultyExperiment::fresh()],
            &CampaignTelemetry::none(),
        );
        clear_default_sink();
        // Panic + timeout cells each emitted one CellFailed event.
        // (`>=`: concurrent tests may run their own failing campaigns
        // while our sink is installed.)
        assert!(sink.counts().cell_failed >= before + 2);
        assert_eq!(report.failed_cells().len(), 2);
    }

    #[test]
    fn progress_callback_panics_are_contained() {
        let cfg = tiny();
        let telemetry = CampaignTelemetry::none().on_progress(|_| panic!("observer bug"));
        // Must complete — and with every cell Ok, since only the
        // observer (not any cell) panicked.
        let report = run_campaign_with(&cfg, &telemetry);
        assert!(report.all_ok());
    }

    #[test]
    fn lock_unpoisoned_recovers_from_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7);
    }

    #[test]
    fn concurrent_campaigns_do_not_double_count_vm_deltas() {
        // The snapshot windows serialize on VM_STAT_GUARD, so the two
        // campaigns' deltas are disjoint: their sum can never exceed
        // the true process-wide delta over the enclosing block.
        let before = counters::snapshot();
        let a = std::thread::spawn(|| run_campaign(&tiny()).vm.instructions);
        let b = std::thread::spawn(|| run_campaign(&tiny()).vm.instructions);
        let a = a.join().expect("campaign a");
        let b = b.join().expect("campaign b");
        let total = counters::snapshot().since(before).instructions;
        assert!(a > 0 && b > 0, "tiny campaigns execute VM instructions");
        assert!(
            a + b <= total,
            "overlapping snapshot windows double-counted: {a} + {b} > {total}"
        );
    }
}
