//! The campaign runner: every experiment, one pass, any number of
//! workers, byte-identical output.
//!
//! A *campaign* executes a selected set of [`Experiment`]s — by default
//! the full E1–E15 suite — by decomposing each into its independent
//! cells (the E3 matrix runs one cell per technique × configuration
//! pair, the E4 sweep one per brute-force campaign, …) and draining
//! the cell pool on a work-stealing thread pool.
//!
//! Three properties make the result reproducible:
//!
//! * every random choice in a cell derives from
//!   [`CampaignConfig::master_seed`] through the SplitMix64 path
//!   `derive(master, [experiment, cell])` — a pure function of the
//!   *indices*, never of scheduling order;
//! * cell outputs land in pre-assigned slots and are assembled in
//!   experiment/cell order;
//! * [`CampaignReport::render`] is a pure function of the assembled
//!   [`Report`]s — wall-clock timings, worker count and cache counters
//!   are reported separately via [`CampaignReport::summary`].
//!
//! Hence `render()` is byte-identical for any worker count, which
//! `tests/campaign.rs` asserts for 1, 4 and 8 workers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use swsec_rng::derive;
use swsec_vm::counters::{self, VmCounters};

use crate::cache::{CacheStats, ProgramCache};
use crate::experiments::{registry, Experiment};
use crate::report::{ExperimentId, Report, Table};

/// Everything a campaign run depends on. One master seed drives every
/// stochastic driver in the suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// The root of every random choice made anywhere in the campaign.
    pub master_seed: u64,
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Entropy levels the E4 ASLR sweep visits.
    pub aslr_bits_levels: Vec<u8>,
    /// Brute-force campaigns averaged per E4 entropy level.
    pub aslr_trials: u32,
    /// Oracle-query budget per E14 canary recovery.
    pub oracle_budget: u32,
    /// Experiments to run; empty means the full registry.
    pub experiments: Vec<ExperimentId>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            master_seed: 0x2016_DA7E, // DATE 2016
            workers: 0,
            aslr_bits_levels: vec![2, 4, 6, 8],
            aslr_trials: 6,
            oracle_budget: 2048,
            experiments: Vec::new(),
        }
    }
}

impl CampaignConfig {
    /// A configuration sized for tests and smoke runs: fewer and
    /// smaller E4 brute-force campaigns, everything else intact.
    pub fn quick() -> CampaignConfig {
        CampaignConfig {
            aslr_bits_levels: vec![2, 4],
            aslr_trials: 3,
            ..CampaignConfig::default()
        }
    }

    /// The experiments this campaign will run, in presentation order.
    pub fn selected(&self) -> Vec<&'static dyn Experiment> {
        registry()
            .iter()
            .copied()
            .filter(|e| self.experiments.is_empty() || self.experiments.contains(&e.id()))
            .collect()
    }

    /// The seed for cell `cell` of experiment `id`: a pure function of
    /// the indices, so results never depend on which worker ran what.
    pub fn cell_seed(&self, id: ExperimentId, cell: usize) -> u64 {
        derive(self.master_seed, &[id.seed_path(), cell as u64])
    }
}

/// Shared per-campaign state handed to every cell: today the compile
/// cache, so each distinct victim/options pair compiles exactly once
/// per campaign no matter how many cells launch it.
#[derive(Debug, Default)]
pub struct CampaignCtx {
    /// The campaign-wide program cache.
    pub cache: ProgramCache,
}

impl CampaignCtx {
    /// A fresh context with an empty cache.
    pub fn new() -> CampaignCtx {
        CampaignCtx::default()
    }
}

/// Where one experiment's time went (worker-busy time, summed across
/// its cells — not wall-clock, which overlaps under parallelism).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentTiming {
    /// The experiment.
    pub id: ExperimentId,
    /// Number of cells executed.
    pub cells: usize,
    /// Total busy time across all its cells.
    pub busy: Duration,
}

/// The output of [`run_campaign`]: the assembled reports plus the
/// non-deterministic run metadata, kept strictly apart.
#[derive(Debug)]
pub struct CampaignReport {
    /// One report per selected experiment, in presentation order.
    pub reports: Vec<Report>,
    /// Per-experiment busy time (excluded from [`render`](Self::render)).
    pub timings: Vec<ExperimentTiming>,
    /// Compile-cache counters at the end of the run.
    pub cache: CacheStats,
    /// VM hot-path counters (instructions, icache, TLB) accumulated by
    /// every machine the campaign's cells dropped. Process-global
    /// deltas: concurrent VM activity outside the campaign leaks in,
    /// so this is run metadata, never part of [`render`](Self::render).
    pub vm: VmCounters,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock for the whole campaign.
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Renders every report, deterministically: a pure function of the
    /// structured results, independent of worker count and timing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }

    /// The run-metadata table: busy time per experiment, cache
    /// counters, worker count. Deliberately *not* part of
    /// [`render`](Self::render) — it varies run to run.
    pub fn summary(&self) -> Table {
        let pct = |r: Option<f64>| match r {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "n/a".to_string(),
        };
        let mut t = Table::new(
            format!(
                "campaign: {} workers, {:.2}s wall, cache {} hits / {} misses / {} parses, \
                 vm {} instr, icache {} hit, tlb {} hit",
                self.workers,
                self.elapsed.as_secs_f64(),
                self.cache.hits,
                self.cache.misses,
                self.cache.parses,
                self.vm.instructions,
                pct(self.vm.icache_hit_rate()),
                pct(self.vm.tlb_hit_rate()),
            ),
            &["experiment", "cells", "busy"],
        );
        for timing in &self.timings {
            t.row(vec![
                timing.id.to_string(),
                timing.cells.to_string(),
                format!("{:.1}ms", timing.busy.as_secs_f64() * 1e3),
            ]);
        }
        t
    }
}

/// One schedulable unit: cell `cell` of `exps[exp]`, writing `slot`.
#[derive(Debug, Clone, Copy)]
struct Task {
    exp: usize,
    cell: usize,
    slot: usize,
}

/// Runs the selected experiments across a work-stealing pool and
/// assembles their reports.
///
/// The cell pool is distributed round-robin over per-worker deques;
/// each worker pops its own deque from the front and steals from the
/// back of the others when it runs dry. Stealing only changes *who*
/// runs a cell, never its seed or its output slot, so the assembled
/// reports — and hence [`CampaignReport::render`] — are identical for
/// every worker count.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let started = Instant::now();
    let vm_before = counters::snapshot();
    let exps = cfg.selected();
    let ctx = CampaignCtx::new();

    // Lay out one result slot per cell, experiment-major.
    let cell_counts: Vec<usize> = exps.iter().map(|e| e.cells(cfg).max(1)).collect();
    let mut tasks = Vec::new();
    let mut slot = 0usize;
    for (exp, &cells) in cell_counts.iter().enumerate() {
        for cell in 0..cells {
            tasks.push(Task { exp, cell, slot });
            slot += 1;
        }
    }
    let total_slots = slot;

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        cfg.workers
    };
    let workers = workers.clamp(1, total_slots.max(1));

    let queues: Vec<Mutex<VecDeque<Task>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        queues[i % workers].lock().expect("queue lock").push_back(task);
    }

    let slots: Vec<Mutex<Option<Vec<Table>>>> =
        (0..total_slots).map(|_| Mutex::new(None)).collect();
    let busy_nanos: Vec<AtomicU64> = (0..exps.len()).map(|_| AtomicU64::new(0)).collect();

    let ctx = &ctx;
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let busy_nanos = &busy_nanos;
            let exps = &exps;
            scope.spawn(move || loop {
                // Own deque first (front), then steal (back) — the
                // classic discipline keeps stolen work coarse.
                let task = queues[me]
                    .lock()
                    .expect("queue lock")
                    .pop_front()
                    .or_else(|| {
                        (1..workers).find_map(|d| {
                            queues[(me + d) % workers]
                                .lock()
                                .expect("queue lock")
                                .pop_back()
                        })
                    });
                let Some(task) = task else { break };
                let cell_started = Instant::now();
                let out = exps[task.exp].run_cell(cfg, ctx, task.cell);
                busy_nanos[task.exp]
                    .fetch_add(cell_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                *slots[task.slot].lock().expect("slot lock") = Some(out);
            });
        }
    });

    // Assemble in experiment order from the slot layout.
    let mut reports = Vec::with_capacity(exps.len());
    let mut timings = Vec::with_capacity(exps.len());
    let mut base = 0usize;
    for (exp, &cells) in cell_counts.iter().enumerate() {
        let outputs: Vec<Vec<Table>> = (0..cells)
            .map(|cell| {
                slots[base + cell]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("every cell ran")
            })
            .collect();
        base += cells;
        reports.push(exps[exp].assemble(cfg, outputs));
        timings.push(ExperimentTiming {
            id: exps[exp].id(),
            cells,
            busy: Duration::from_nanos(busy_nanos[exp].load(Ordering::Relaxed)),
        });
    }

    CampaignReport {
        reports,
        timings,
        cache: ctx.cache.stats(),
        vm: counters::snapshot().since(vm_before),
        workers,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        // E10 + E12 are fast, deterministic, and exercise two cells'
        // worth of scheduling.
        CampaignConfig {
            experiments: vec![ExperimentId::new(10), ExperimentId::new(12)],
            ..CampaignConfig::quick()
        }
    }

    #[test]
    fn reports_come_back_in_presentation_order() {
        let mut cfg = tiny();
        // Selection order in the config must not matter.
        cfg.experiments.reverse();
        let r = run_campaign(&cfg);
        assert_eq!(r.reports.len(), 2);
        assert_eq!(r.reports[0].id, ExperimentId::new(10));
        assert_eq!(r.reports[1].id, ExperimentId::new(12));
    }

    #[test]
    fn worker_count_does_not_change_the_render() {
        let mut cfg = tiny();
        cfg.workers = 1;
        let one = run_campaign(&cfg).render();
        cfg.workers = 3;
        let three = run_campaign(&cfg).render();
        assert_eq!(one, three);
    }

    #[test]
    fn cell_seeds_are_per_experiment_and_per_cell() {
        let cfg = CampaignConfig::default();
        let a = cfg.cell_seed(ExperimentId::new(3), 0);
        let b = cfg.cell_seed(ExperimentId::new(3), 1);
        let c = cfg.cell_seed(ExperimentId::new(4), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cfg.cell_seed(ExperimentId::new(3), 0));
    }

    #[test]
    fn empty_selection_means_everything() {
        let cfg = CampaignConfig::default();
        assert_eq!(cfg.selected().len(), registry().len());
    }
}
