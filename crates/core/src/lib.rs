//! # swsec — the low-level software security laboratory
//!
//! This crate ties the substrates together into the system of
//! Piessens & Verbauwhede, *Software Security: Vulnerabilities and
//! Countermeasures for Two Attacker Models* (DATE 2016):
//!
//! * [`loader`] — compile-and-launch under a chosen defense stack
//!   (canaries, DEP, ASLR, shadow stack, bounds checks);
//! * [`equiv`] — the paper's security objective as an executable
//!   check: compiled behaviour vs the source semantics;
//! * [`attacker`] — the §III-B attack techniques as runnable
//!   procedures with canonical victims;
//! * [`experiments`] — the E1..E16 drivers reproducing every figure
//!   and claim (see `DESIGN.md` and `EXPERIMENTS.md`), each behind the
//!   uniform [`experiments::Experiment`] trait;
//! * [`campaign`] — the parallel, fault-tolerant campaign runner: the
//!   full suite on a work-stealing pool, byte-identical output at any
//!   worker count, panicking/stalling cells contained and reported;
//! * [`faults`] — deterministic fault injection: seed-derived crash
//!   points and bit flips, plus the test-only fault-demo experiment;
//! * [`cache`] — compile-once memoization across a campaign's
//!   thousands of victim launches;
//! * [`harness`] — the snapshot/restore fork server: boot a victim
//!   once, serve every attack attempt in O(dirty pages);
//! * [`serve`] — campaign-as-a-service: a long-lived job queue with
//!   multi-tenant sessions, sharded warm fork-server pools, bounded
//!   backpressure with typed shedding, and per-tenant determinism;
//! * [`report`] — plain-text tables the drivers emit.
//!
//! ## Quick start
//!
//! ```
//! use swsec::prelude::*;
//!
//! // Attack the unprotected platform…
//! let r = run_technique(Technique::Ret2Libc, DefenseConfig::none(), 42)?;
//! assert!(r.outcome.succeeded());
//! // …then deploy stack canaries and watch it die.
//! let mut cfg = DefenseConfig::none();
//! cfg.canary = true;
//! let r = run_technique(Technique::Ret2Libc, cfg, 42)?;
//! assert!(!r.outcome.succeeded());
//! # Ok::<(), swsec_minc::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod attacker;
pub mod cache;
pub mod campaign;
pub mod equiv;
pub mod experiments;
pub mod faults;
pub mod harness;
pub mod loader;
pub mod report;
pub mod serve;

/// The names nearly every user of the laboratory needs.
pub mod prelude {
    pub use crate::attacker::{run_technique, AttackOutcome, AttackResult, Technique};
    pub use crate::cache::ProgramCache;
    pub use crate::campaign::{
        run_campaign, run_campaign_on, run_campaign_with, CampaignConfig, CampaignReport,
        CampaignTelemetry, CellOutcome, CellProgress, CellRecord,
    };
    pub use crate::faults::{FaultPlan, FaultyExperiment};
    pub use crate::harness::{AttackTarget, AttemptOutcome, ForkServer, SearchOutcome, ServeMode};
    pub use crate::equiv::{compare, Comparison, Verdict};
    pub use crate::experiments::{registry, Experiment};
    pub use crate::loader::{launch, Session};
    pub use crate::report::{ExperimentId, Report, Table};
    pub use crate::serve::{
        CampaignService, JobId, JobOutcome, JobSpec, JobStats, RejectReason, ServeConfig,
        ServeTelemetry, ServeTotals, ServiceRound, TenantConfig, TenantId,
    };
    pub use swsec_defenses::DefenseConfig;
}
