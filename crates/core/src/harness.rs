//! The attack harness: one `execute(seed, input)` surface for every
//! attacker, served by a snapshotting fork server.
//!
//! The paper's §III-C probabilistic countermeasures (ASLR, canaries)
//! are only as strong as the attacker's cost per guess. A real attacker
//! against a forking server pays one `fork()` per attempt, not one
//! `execve()`; the experiments that measure guessing attacks should pay
//! the same. [`ForkServer`] gives them that economy on the VM:
//!
//! 1. **boot** — compile the victim once (through the
//!    [`ProgramCache`]), load it, apply the run-time defenses, and take
//!    a [`MachineSnapshot`] at the attack surface (before any
//!    seed-dependent state exists);
//! 2. **attempt** — [`Machine::restore_from`] rewinds the machine in
//!    O(dirty pages), [`loader::arm_session`] replays the seed-dependent
//!    launch tail (machine RNG, canary draw), the attacker's input is
//!    fed and the machine runs.
//!
//! Because `arm_session` is the *same function* the loader runs on a
//! fresh launch, and a restored machine is architecturally equivalent
//! to a freshly built one (`crates/vm/tests/snapshot.rs`), an attempt
//! served from the snapshot behaves byte-for-byte like
//! [`ServeMode::Rebuild`] — which rebuilds the machine from the
//! compiled image every attempt and exists precisely so that
//! equivalence stays testable end to end. The only divergence is the
//! cache counters in [`ExecStats`] (fork attempts keep the icache and
//! TLBs warm across restores); those are excluded from every rendered
//! report, so experiment output is identical either way.
//!
//! # The `AttackTarget` surface
//!
//! Everything that consumes attempts — the E4 ASLR brute force, the
//! E14 canary oracle, campaign cells, and the `swsec-fuzz`
//! coverage-guided fuzzer — drives its victim through one trait:
//! [`AttackTarget::execute`] maps `(seed, input)` to an
//! [`AttemptOutcome`], and the provided [`AttackTarget::search`] folds
//! a guess sequence over it. [`ForkServer`] is the canonical
//! implementation; the fuzzer adds synthetic targets (compiler
//! differential, fast-path-vs-baseline VM differential) behind the
//! same signature, so a search strategy written once runs against any
//! of them.

use std::sync::Arc;

use swsec_defenses::DefenseConfig;
use swsec_minc::{CompileError, CompileOptions, CompiledProgram};
use swsec_obs::{span, CoverageSink, EventSink, SpanKind};
use swsec_vm::cpu::{Machine, MachineSnapshot, RunOutcome};
use swsec_vm::io::IoBus;
use swsec_vm::profile::Profiler;
use swsec_vm::trace::ExecStats;

use crate::cache::ProgramCache;
use crate::loader::{self, plan_options};

/// Fuel given to each attempt unless overridden with
/// [`ForkServer::with_fuel`].
pub const DEFAULT_FUEL: u64 = 2_000_000;

/// How a [`ForkServer`] executes each attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Restore the boot-time snapshot (O(dirty pages) per attempt).
    #[default]
    Fork,
    /// Rebuild a fresh machine from the compiled image per attempt —
    /// the slow baseline the snapshot path must match byte for byte.
    Rebuild,
}

impl ServeMode {
    /// `Fork` when `on`, `Rebuild` otherwise.
    pub fn from_fork_flag(on: bool) -> ServeMode {
        if on {
            ServeMode::Fork
        } else {
            ServeMode::Rebuild
        }
    }
}

/// Everything observable about one served attempt.
#[derive(Debug, Clone)]
pub struct AttemptOutcome {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The canary value installed for this attempt (when canaries are
    /// on).
    pub canary_value: Option<u32>,
    /// The attempt's complete I/O state (outputs written, input left).
    pub io: IoBus,
    /// Execution statistics of this attempt alone. The architectural
    /// counters are identical across [`ServeMode`]s; the cache counters
    /// are not (fork attempts run with warm caches).
    pub stats: ExecStats,
}

impl AttemptOutcome {
    /// Output written to channel `fd` during the attempt.
    pub fn output(&self, fd: u32) -> &[u8] {
        self.io.output(fd)
    }

    /// Whether channel `fd`'s output contains `needle`.
    pub fn emitted(&self, fd: u32, needle: &[u8]) -> bool {
        !needle.is_empty() && self.io.output(fd).windows(needle.len()).any(|w| w == needle)
    }
}

/// Result of a batched [`AttackTarget::search`].
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Attempts served (equals the number of inputs when no hit).
    pub attempts: u64,
    /// The first attempt the predicate accepted: its 1-based index and
    /// full outcome.
    pub hit: Option<(u64, AttemptOutcome)>,
}

/// Anything an attacker can throw guesses at.
///
/// One attempt is a pure function of `(seed, input)`: `seed` re-arms
/// whatever per-launch randomness the target models (ASLR slide draw,
/// canary draw, machine RNG) and `input` is the attacker-controlled
/// byte string. Implementations must be deterministic — the same
/// `(seed, input)` always yields the same [`AttemptOutcome`] — and
/// attempts must be independent (no state leaks from one attempt into
/// the next).
///
/// [`ForkServer`] is the canonical implementation; the `swsec-fuzz`
/// crate plugs its compiler and VM-differential targets in behind the
/// same trait, so brute-force loops, campaign cells and the fuzzer all
/// share one execution surface.
pub trait AttackTarget {
    /// Serves one attempt: feed `input` to the target armed with
    /// `seed`, run to completion or fuel exhaustion.
    ///
    /// Fuel exhaustion is an ordinary outcome
    /// ([`RunOutcome::OutOfFuel`] inside the [`AttemptOutcome`]), not
    /// an error: a search treats it as a miss, a fuzzer as a
    /// hang-class signal.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the attempt cannot be staged at
    /// all (e.g. the seed implies a different victim binary than the
    /// booted one, or a generated program fails to compile).
    fn execute(&mut self, seed: u64, input: &[u8]) -> Result<AttemptOutcome, CompileError>;

    /// Serves attempts in order until `is_hit` accepts one, returning
    /// the attempt count and the first hit. Deterministic: the same
    /// `(seed, input)` sequence always yields the same outcome.
    ///
    /// # Errors
    ///
    /// Propagates the first [`execute`](AttackTarget::execute) error.
    fn search<I, P>(&mut self, attempts: I, mut is_hit: P) -> Result<SearchOutcome, CompileError>
    where
        Self: Sized,
        I: IntoIterator<Item = (u64, Vec<u8>)>,
        P: FnMut(&AttemptOutcome) -> bool,
    {
        let mut served = 0u64;
        for (seed, input) in attempts {
            served += 1;
            let outcome = self.execute(seed, &input)?;
            if is_hit(&outcome) {
                return Ok(SearchOutcome {
                    attempts: served,
                    hit: Some((served, outcome)),
                });
            }
        }
        Ok(SearchOutcome {
            attempts: served,
            hit: None,
        })
    }
}

/// A compiled-once, booted-once victim serving attack attempts from a
/// snapshot (see the [module docs](self)).
pub struct ForkServer {
    program: Arc<CompiledProgram>,
    config: DefenseConfig,
    opts: CompileOptions,
    machine: Machine,
    snapshot: MachineSnapshot,
    mode: ServeMode,
    fuel: u64,
    sink: Option<Arc<dyn EventSink>>,
    /// Set instead of `sink` when the sink is a coverage map attached
    /// via [`set_coverage`](Self::set_coverage) (the devirtualized
    /// tier-2 path).
    cov: Option<Arc<CoverageSink>>,
    /// Tier-2 switch applied to every machine this server runs
    /// (resident and rebuilt), so a differential baseline holds across
    /// [`ServeMode::Rebuild`] attempts too.
    tier2: bool,
    profiler: Option<Arc<Profiler>>,
}

impl std::fmt::Debug for ForkServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkServer")
            .field("config", &self.config)
            .field("mode", &self.mode)
            .field("fuel", &self.fuel)
            .field("sink", &self.sink.is_some())
            .field("profiler", &self.profiler.is_some())
            .finish_non_exhaustive()
    }
}

impl ForkServer {
    /// Compiles `source` under `config` (layout drawn from
    /// `plan_seed`), boots it once, and snapshots at the attack
    /// surface: program loaded, DEP and shadow stack applied, no
    /// seed-dependent state yet. Attempts are served from the snapshot
    /// ([`ServeMode::Fork`]) with [`DEFAULT_FUEL`] per attempt; chain
    /// [`with_mode`](Self::with_mode) and [`with_fuel`](Self::with_fuel)
    /// to override.
    ///
    /// Every subsequent attempt seed must imply the same compile plan
    /// as `plan_seed` — automatically true without ASLR (the plan is
    /// seed-independent), and true with ASLR exactly when the victim's
    /// slide is held fixed across attempts, which is what a forking
    /// server means.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when compilation or loading fails.
    pub fn boot(
        cache: &ProgramCache,
        source: &str,
        config: DefenseConfig,
        plan_seed: u64,
    ) -> Result<ForkServer, CompileError> {
        let opts = plan_options(&config, plan_seed);
        let program = cache.compile(source, &opts)?;
        let mut machine = Machine::new();
        program.load(&mut machine)?;
        machine.mem_mut().set_enforce(config.dep);
        machine.set_shadow_stack(config.shadow_stack);
        let snapshot = machine.snapshot();
        let tier2 = machine.tier2();
        Ok(ForkServer {
            program,
            config,
            opts,
            machine,
            snapshot,
            mode: ServeMode::Fork,
            fuel: DEFAULT_FUEL,
            sink: None,
            cov: None,
            tier2,
            profiler: None,
        })
    }

    /// Replaces the per-attempt fuel budget.
    ///
    /// Fuel is charged per attempt and restored in full before the
    /// next: a hung or looping attempt ends in
    /// [`RunOutcome::OutOfFuel`] without starving its successors.
    /// Fuzz runs rely on this — one pathological input costs at most
    /// one fuel budget, and the out-of-fuel outcome is itself a
    /// classifiable signal.
    pub fn with_fuel(mut self, fuel: u64) -> ForkServer {
        self.fuel = fuel;
        self
    }

    /// Replaces the serve mode (snapshot-restore vs rebuild).
    pub fn with_mode(mut self, mode: ServeMode) -> ForkServer {
        self.mode = mode;
        self
    }

    /// Replaces the per-attempt fuel budget in place — the pooled
    /// (lease/return) analogue of [`with_fuel`](Self::with_fuel). The
    /// campaign service calls this when it re-arms a warm server for a
    /// new tenant, so one tenant's fuel policy never bleeds into the
    /// next lease.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Replaces the serve mode in place — the pooled analogue of
    /// [`with_mode`](Self::with_mode), re-armed per lease like
    /// [`set_fuel`](Self::set_fuel).
    pub fn set_mode(&mut self, mode: ServeMode) {
        self.mode = mode;
    }

    /// Attaches (or with `None`, detaches) a security-event sink
    /// observing every attempt, in either [`ServeMode`]. Snapshots do
    /// not capture sinks, so the attachment survives every
    /// [`ServeMode::Fork`] restore; [`ServeMode::Rebuild`] re-attaches
    /// it to each fresh machine. The `swsec-fuzz` coverage map is fed
    /// through exactly this hook.
    pub fn set_event_sink(&mut self, sink: Option<Arc<dyn EventSink>>) {
        self.machine.set_event_sink(sink.clone());
        self.sink = sink;
        self.cov = None;
    }

    /// Attaches (or with `None`, detaches) a coverage sink through
    /// [`Machine::set_coverage`]: the sink observes every attempt like
    /// an ordinary event sink, and tier-2 blocks bump its edge map
    /// directly instead of constructing control-transfer events — the
    /// accumulated map is byte-identical either way. Survives
    /// [`ServeMode::Fork`] restores (snapshots do not capture sinks)
    /// and is re-attached to each fresh [`ServeMode::Rebuild`] machine.
    pub fn set_coverage(&mut self, cov: Option<Arc<CoverageSink>>) {
        self.machine.set_coverage(cov.clone());
        self.sink = cov.clone().map(|c| c as Arc<dyn EventSink>);
        self.cov = cov;
    }

    /// Enables or disables the tier-2 block engine on the resident
    /// machine (and every [`ServeMode::Rebuild`] machine), for
    /// differential baselines and determinism audits — attempts are
    /// bit-for-bit identical either way.
    pub fn set_tier2(&mut self, on: bool) {
        self.machine.set_tier2(on);
        self.tier2 = on;
    }

    /// Attaches (or with `None`, detaches) a deterministic sampling
    /// profiler observing every attempt, in either [`ServeMode`]. Like
    /// event sinks, profilers are not captured by snapshots, so the
    /// attachment survives every [`ServeMode::Fork`] restore — and the
    /// restore re-arms the sample countdown, so a forked attempt's
    /// profile is byte-identical to a rebuilt one.
    /// [`ServeMode::Rebuild`] re-attaches it to each fresh machine.
    pub fn set_profiler(&mut self, prof: Option<Arc<Profiler>>) {
        self.machine.set_profiler(prof.clone());
        self.profiler = prof;
    }

    /// Folds the resident machine's pending stats into the
    /// process-wide VM counters (see
    /// [`Machine::flush_counters`](swsec_vm::cpu::Machine::flush_counters)).
    /// A server parked in a warm pool between service rounds is
    /// flushed first, so every attempt it served is accounted inside
    /// the round that ran it — not in whichever measurement window is
    /// open when the server is finally dropped.
    pub fn flush_counters(&mut self) {
        self.machine.flush_counters();
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// The compiled victim image (layout as loaded).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The defense configuration in force.
    pub fn config(&self) -> DefenseConfig {
        self.config
    }

    /// How attempts are served.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// The per-attempt fuel budget.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }
}

impl AttackTarget for ForkServer {
    /// Serves one attempt: rewind (or rebuild), re-arm the
    /// seed-dependent launch state from `seed`, feed `input` on
    /// channel 0, and run to completion or fuel exhaustion.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when `seed` implies a different
    /// compile plan than the boot seed (the snapshot would be the wrong
    /// binary), or when canary installation fails.
    fn execute(&mut self, seed: u64, input: &[u8]) -> Result<AttemptOutcome, CompileError> {
        if plan_options(&self.config, seed) != self.opts {
            return Err(CompileError {
                message: format!(
                    "fork-server: attempt seed {seed:#x} implies a different compile plan \
                     than the booted victim (vary the attacker's guess, not the victim's slide)"
                ),
            });
        }
        let _attempt = span::enter_with(SpanKind::Attempt, || format!("seed {seed:#x}"));
        match self.mode {
            ServeMode::Fork => {
                let restore = span::enter(SpanKind::Restore, "snapshot");
                self.machine.restore_from(&self.snapshot);
                let canary_value =
                    loader::arm_session(&mut self.machine, &self.program, &self.config, seed)?;
                drop(restore);
                self.machine.io_mut().feed_input(0, input);
                let execute = span::enter(SpanKind::Execute, "");
                let outcome = self.machine.run(self.fuel);
                drop(execute);
                Ok(AttemptOutcome {
                    outcome,
                    canary_value,
                    io: std::mem::take(self.machine.io_mut()),
                    stats: self.machine.stats(),
                })
            }
            ServeMode::Rebuild => {
                let mut session = loader::launch_compiled(&self.program, self.config, seed)?;
                session.machine.set_tier2(self.tier2);
                if let Some(cov) = &self.cov {
                    session.machine.set_coverage(Some(Arc::clone(cov)));
                } else if self.sink.is_some() {
                    session.machine.set_event_sink(self.sink.clone());
                }
                if self.profiler.is_some() {
                    session.machine.set_profiler(self.profiler.clone());
                }
                session.machine.io_mut().feed_input(0, input);
                let execute = span::enter(SpanKind::Execute, "");
                let outcome = session.run(self.fuel);
                drop(execute);
                Ok(AttemptOutcome {
                    outcome,
                    canary_value: session.canary_value,
                    io: std::mem::take(session.machine.io_mut()),
                    stats: session.machine.stats(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::VICTIM_SMASH;

    fn canary_config() -> DefenseConfig {
        let mut cfg = DefenseConfig::none();
        cfg.canary = true;
        cfg
    }

    #[test]
    fn fork_and_rebuild_attempts_are_bit_identical() {
        let cache = ProgramCache::new();
        let mut fork = ForkServer::boot(&cache, VICTIM_SMASH, canary_config(), 7).unwrap();
        let mut rebuild = ForkServer::boot(&cache, VICTIM_SMASH, canary_config(), 7)
            .unwrap()
            .with_mode(ServeMode::Rebuild);
        for seed in [7u64, 8, 9, 7] {
            let input = vec![b'A'; 60]; // smashes past the canary
            let a = fork.execute(seed, &input).unwrap();
            let b = rebuild.execute(seed, &input).unwrap();
            assert_eq!(a.outcome, b.outcome, "seed {seed}");
            assert_eq!(a.canary_value, b.canary_value, "seed {seed}");
            assert_eq!(a.io.observable(), b.io.observable(), "seed {seed}");
            // Cache counters may differ (fork attempts keep warm
            // caches); the architectural projection must not.
            assert_eq!(
                a.stats.architectural(),
                b.stats.architectural(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fork_and_rebuild_profiles_are_byte_identical() {
        // The profiler samples on retired instructions and the restore
        // path re-arms its countdown, so serve mode must not change a
        // single folded line. Interval 16: the countdown re-arms at
        // every attempt boundary and a canary-tripped attempt retires
        // only a few dozen instructions, so a coarser interval would
        // never fire.
        let cache = ProgramCache::new();
        let folded = |mode: ServeMode| {
            let mut server = ForkServer::boot(&cache, VICTIM_SMASH, canary_config(), 7)
                .unwrap()
                .with_mode(mode);
            let prof = Arc::new(Profiler::new(16));
            server.set_profiler(Some(prof.clone()));
            for seed in [7u64, 8, 9] {
                server.execute(seed, &[b'A'; 60]).unwrap();
            }
            prof.folded(&server.program().symbol_table())
        };
        let fork = folded(ServeMode::Fork);
        let rebuild = folded(ServeMode::Rebuild);
        assert!(!fork.is_empty(), "no samples at interval 16");
        assert_eq!(fork, rebuild);
        // And the output is symbolized, not raw hex.
        assert!(fork.contains("main"), "unsymbolized profile:\n{fork}");
    }

    #[test]
    fn attempts_are_independent() {
        // A benign attempt after a crashing one sees pristine state.
        let cache = ProgramCache::new();
        let mut server = ForkServer::boot(&cache, VICTIM_SMASH, canary_config(), 3).unwrap();
        let crash = server.execute(3, &[b'A'; 96]).unwrap();
        assert!(matches!(crash.outcome, RunOutcome::Fault(_)));
        for _ in 0..3 {
            let ok = server.execute(3, b"hello").unwrap();
            assert_eq!(ok.outcome, RunOutcome::Halted(0));
            assert_eq!(ok.output(1), b"OK");
        }
    }

    #[test]
    fn same_seed_means_same_canary_across_attempts() {
        // The forking-server property the E14 oracle exploits.
        let cache = ProgramCache::new();
        let mut server = ForkServer::boot(&cache, VICTIM_SMASH, canary_config(), 11).unwrap();
        let a = server.execute(42, b"x").unwrap();
        let b = server.execute(42, b"y").unwrap();
        let c = server.execute(43, b"x").unwrap();
        assert_eq!(a.canary_value, b.canary_value);
        assert_ne!(a.canary_value, c.canary_value);
    }

    #[test]
    fn compiles_and_boots_exactly_once() {
        let cache = ProgramCache::new();
        let mut server = ForkServer::boot(&cache, VICTIM_SMASH, canary_config(), 5).unwrap();
        for seed in 0..50u64 {
            server.execute(seed, b"ping").unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.parses), (0, 1, 1));
    }

    #[test]
    fn mismatched_plan_seed_is_rejected() {
        let cache = ProgramCache::new();
        let mut cfg = DefenseConfig::none();
        cfg.aslr_bits = Some(8);
        let mut server = ForkServer::boot(&cache, VICTIM_SMASH, cfg, 1).unwrap();
        // Same seed: same slide, fine.
        assert!(server.execute(1, b"x").is_ok());
        // A different seed would re-randomize the victim — rejected.
        assert!(server.execute(2, b"x").is_err());
    }

    #[test]
    fn search_reports_the_first_hit() {
        let cache = ProgramCache::new();
        let mut server = ForkServer::boot(&cache, VICTIM_SMASH, DefenseConfig::none(), 1).unwrap();
        // Benign inputs echo OK; only the third "input" is special to
        // the predicate.
        let attempts = (0..5u64).map(|i| (1u64, vec![b'a' + i as u8; 4]));
        let result = AttackTarget::search(&mut server, attempts, |r| {
            r.io.pending_input(0) == 0 && r.output(1) == b"OK"
        })
        .unwrap();
        let (index, hit) = result.hit.expect("every benign attempt echoes OK");
        assert_eq!(index, 1);
        assert_eq!(result.attempts, 1);
        assert_eq!(hit.outcome, RunOutcome::Halted(0));
    }

    #[test]
    fn rebuild_attempts_see_the_attached_sink() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use swsec_obs::{EventMask, SecurityEvent};

        struct Counter(AtomicUsize);
        impl EventSink for Counter {
            fn record(&self, _event: &SecurityEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn interests(&self) -> EventMask {
                EventMask::CONTROL
            }
        }

        let cache = ProgramCache::new();
        for mode in [ServeMode::Fork, ServeMode::Rebuild] {
            let mut server = ForkServer::boot(&cache, VICTIM_SMASH, DefenseConfig::none(), 1)
                .unwrap()
                .with_mode(mode);
            let counter = Arc::new(Counter(AtomicUsize::new(0)));
            server.set_event_sink(Some(counter.clone()));
            server.execute(1, b"hi").unwrap();
            assert!(
                counter.0.load(Ordering::Relaxed) > 0,
                "no control transfers observed in {mode:?}"
            );
        }
    }
}
