//! Campaign-service contract: per-tenant renders are byte-identical
//! at any worker count and in either serve mode, admission control is
//! typed and observable, quota slots free as the queue drains, the
//! round's telemetry window carries `serve.*` metrics and Job spans,
//! and a watchdog-abandoned job's counter traffic diverts to the
//! leaked bank instead of skewing later rounds' VM windows.

use std::sync::Arc;
use std::time::Duration;

use swsec::attacker::VICTIM_SMASH;
use swsec::serve::{
    CampaignService, JobOutcome, JobSpec, RejectReason, ServeConfig, ServeTelemetry, TenantConfig,
};
use swsec_defenses::DefenseConfig;
use swsec_obs::{
    clear_default_sink, set_default_sink, CountingSink, MetricsRegistry, SpanKind, SpanMask,
};

fn tenant(name: &str, seed: u64, priority: u8, quota: usize) -> TenantConfig {
    TenantConfig {
        name: name.to_string(),
        seed,
        priority,
        quota,
    }
}

fn spec(config: DefenseConfig) -> JobSpec {
    JobSpec {
        source: VICTIM_SMASH.to_string(),
        config,
        attempts: 12,
        max_input: 48,
    }
}

/// Two tenants with different defense stacks (so the pool holds more
/// than one key), three jobs each, one round.
fn two_tenant_render(workers: usize, fork_server: bool) -> String {
    let mut svc = CampaignService::new(ServeConfig {
        workers,
        fork_server,
        ..ServeConfig::default()
    });
    let alice = svc.register_tenant(tenant("alice", 0xA11CE, 2, 16));
    let bob = svc.register_tenant(tenant("bob", 0xB0B, 1, 16));
    for _ in 0..3 {
        svc.submit(alice, spec(DefenseConfig::none())).unwrap();
        svc.submit(bob, spec(DefenseConfig::modern(8))).unwrap();
    }
    let round = svc.run();
    assert_eq!(round.jobs, 6);
    assert_eq!(round.totals.jobs_done, 6);
    svc.render()
}

#[test]
fn renders_are_byte_identical_across_workers_and_serve_modes() {
    let baseline = two_tenant_render(1, true);
    assert_eq!(baseline, two_tenant_render(4, true), "1 vs 4 workers");
    assert_eq!(baseline, two_tenant_render(1, false), "fork vs rebuild");
    assert_eq!(
        baseline,
        two_tenant_render(4, false),
        "4 workers, rebuild"
    );
    assert!(baseline.contains("tenant alice"));
    assert!(baseline.contains("tenant bob"));
    assert!(baseline.contains("done"));
}

#[test]
fn quota_slots_free_as_the_queue_drains() {
    let mut svc = CampaignService::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let t = svc.register_tenant(tenant("t", 9, 1, 2));
    svc.submit(t, spec(DefenseConfig::none())).unwrap();
    svc.submit(t, spec(DefenseConfig::none())).unwrap();
    assert_eq!(
        svc.submit(t, spec(DefenseConfig::none())).unwrap_err(),
        RejectReason::QuotaExceeded { quota: 2 }
    );
    svc.run();
    // The round drained the tenant's backlog: quota capacity is free
    // again, and the previously rejected job stays recorded.
    let d = svc.submit(t, spec(DefenseConfig::none())).unwrap();
    svc.run();
    assert!(svc.outcome(d).unwrap().is_ok());
    let render = svc.render_tenant(t);
    assert!(render.contains("rejected(quota)"));
    assert_eq!(svc.totals().jobs_rejected, 1);
    assert_eq!(svc.totals().jobs_done, 3);
}

#[test]
fn shed_and_rejected_jobs_reach_the_default_sink() {
    // The only test in this binary that sheds while a default sink is
    // installed, so the counts are unambiguous even though the sink is
    // process-global.
    let sink = Arc::new(CountingSink::new());
    set_default_sink(sink.clone());
    let mut svc = CampaignService::new(ServeConfig {
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let low = svc.register_tenant(tenant("low", 1, 0, 8));
    let high = svc.register_tenant(tenant("high", 2, 7, 8));
    let victim = svc.submit(low, spec(DefenseConfig::none())).unwrap();
    let kept = svc.submit(high, spec(DefenseConfig::none())).unwrap();
    let refused = svc.submit(high, spec(DefenseConfig::none()));
    clear_default_sink();
    assert_eq!(svc.outcome(victim), Some(JobOutcome::Shed));
    assert_eq!(svc.outcome(kept), Some(JobOutcome::Pending));
    assert_eq!(
        refused.unwrap_err(),
        RejectReason::QueueFull { capacity: 1 }
    );
    // One JobShed for the shed victim, one for the rejected arrival.
    assert_eq!(sink.counts().job_shed, 2);
}

#[test]
fn round_telemetry_exports_serve_metrics_and_job_spans() {
    let registry = Arc::new(MetricsRegistry::new());
    let telemetry = ServeTelemetry {
        metrics: Some(registry.clone()),
        spans: Some(SpanMask::ALL),
        profiler: None,
    };
    let mut svc = CampaignService::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let t = svc.register_tenant(tenant("t", 3, 1, 8));
    for _ in 0..2 {
        svc.submit(t, spec(DefenseConfig::none())).unwrap();
    }
    let round = svc.run_with(&telemetry);

    assert_eq!(registry.counter_value("serve.rounds"), 1);
    assert_eq!(registry.counter_value("serve.jobs_submitted"), 2);
    assert_eq!(registry.counter_value("serve.jobs_done"), 2);
    assert_eq!(registry.counter_value("serve.attempts"), 24);
    assert!(registry.counter_value("vm.instructions") > 0);
    assert!(
        registry.counter_value("cache.hits") + registry.counter_value("cache.misses") > 0,
        "the round must have touched the compile cache"
    );
    // Metric export must carry the job-latency histogram too.
    let exported = registry.export_jsonl().join("\n");
    assert!(exported.contains("serve.job_micros.count"));

    // One root span on track 0, one Job span per job on tracks 1..
    assert!(round.spans.iter().any(|(track, _)| *track == 0));
    let jobs: usize = round
        .spans
        .iter()
        .flat_map(|(_, records)| records)
        .filter(|r| r.kind == SpanKind::Job)
        .count();
    assert_eq!(jobs, 2);
    assert!(round.span_tree().contains("serve round"));
}

/// A fixed small workload whose VM-counter window is deterministic:
/// fresh service, one tenant, two jobs.
fn measured_round_instructions() -> u64 {
    let mut svc = CampaignService::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let t = svc.register_tenant(tenant("probe", 0x5EED, 1, 8));
    for _ in 0..2 {
        svc.submit(t, spec(DefenseConfig::none())).unwrap();
    }
    let round = svc.run();
    assert_eq!(round.totals.jobs_done, 2);
    round.vm.instructions
}

#[test]
fn watchdog_abandoned_jobs_divert_counters_away_from_later_windows() {
    let clean = measured_round_instructions();
    let leaked_before = swsec_vm::counters::leaked_snapshot();

    // A job whose attempt budget dwarfs its deadline: the watchdog
    // abandons its thread mid-churn. The thread notices the quarantine
    // at its next attempt boundary and retires, dropping its leased
    // server — and every counter it flushes from that point on lands
    // in the leaked bank, not in whichever round happens to have a
    // window open.
    let mut svc = CampaignService::new(ServeConfig {
        workers: 1,
        job_deadline: Duration::from_millis(40),
        job_retries: 0,
        ..ServeConfig::default()
    });
    let t = svc.register_tenant(tenant("hog", 0xDEAD, 1, 4));
    let hog = svc
        .submit(
            t,
            JobSpec {
                source: VICTIM_SMASH.to_string(),
                config: DefenseConfig::none(),
                attempts: u32::MAX,
                max_input: 48,
            },
        )
        .unwrap();
    let round = svc.run();
    assert_eq!(svc.outcome(hog), Some(JobOutcome::TimedOut));
    assert_eq!(round.totals.jobs_failed, 1);

    // Later rounds see exactly the clean instruction count — before
    // the quarantine, the leaked thread's flush skewed whatever window
    // was open when it finally died.
    let during = measured_round_instructions();
    assert_eq!(during, clean, "leaked job skewed a later VM window");

    // And the leaked traffic is not lost: it is accounted in the
    // leaked bank. The thread retires at an attempt boundary, so poll
    // briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let leaked = swsec_vm::counters::leaked_snapshot().since(leaked_before);
        if leaked.instructions > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked bank never received the abandoned job's counters"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
