//! Property-based tests over the core invariants of the workspace:
//! encoder/decoder bijectivity, compiler/interpreter observational
//! agreement on safe programs, canary completeness, sealing
//! authenticity and continuity freshness.
//
// Gated behind the non-default `proptest-tests` feature: the default
// workspace must build with zero network access, and `proptest` is a
// registry dependency. Enable with `--features proptest-tests` after
// restoring `proptest` to [dev-dependencies].
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use swsec::prelude::*;
use swsec_minc::parse;
use swsec_pma::platform::ModuleKey;
use swsec_pma::{CrashPoint, NaiveContinuity, Platform, TwoPhaseContinuity, UntrustedStore};
use swsec_vm::isa::{AluOp, Cond, Instr, Reg};

// ---------------------------------------------------------------------
// ISA roundtrip
// ---------------------------------------------------------------------

fn reg_strategy() -> impl Strategy<Value = Reg> {
    prop::sample::select(swsec_vm::isa::ALL_REGS.to_vec())
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let alu = prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::DivU,
        AluOp::DivS,
        AluOp::ModU,
        AluOp::ModS,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
    ]);
    let cond = prop::sample::select(vec![
        Cond::Z,
        Cond::Nz,
        Cond::Lt,
        Cond::Ge,
        Cond::Le,
        Cond::Gt,
        Cond::B,
        Cond::Ae,
    ]);
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        Just(Instr::Leave),
        (reg_strategy(), any::<u32>()).prop_map(|(dst, imm)| Instr::MovI { dst, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(dst, base, disp)| Instr::Load { dst, base, disp }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(base, src, disp)| Instr::Store { base, disp, src }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(dst, base, disp)| Instr::LoadB { dst, base, disp }),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(base, src, disp)| Instr::StoreB { base, disp, src }),
        reg_strategy().prop_map(Instr::Push),
        reg_strategy().prop_map(Instr::Pop),
        any::<u32>().prop_map(Instr::PushI),
        (alu, reg_strategy(), reg_strategy()).prop_map(|(op, dst, src)| Instr::Alu {
            op,
            dst,
            src
        }),
        (reg_strategy(), any::<u32>()).prop_map(|(dst, imm)| Instr::AddI { dst, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(a, b)| Instr::Cmp { a, b }),
        (reg_strategy(), any::<u32>()).prop_map(|(a, imm)| Instr::CmpI { a, imm }),
        any::<u32>().prop_map(Instr::Jmp),
        (cond, any::<u32>()).prop_map(|(cond, target)| Instr::JCond { cond, target }),
        any::<u32>().prop_map(Instr::Call),
        reg_strategy().prop_map(Instr::CallR),
        reg_strategy().prop_map(Instr::JmpR),
        any::<u32>().prop_map(Instr::Enter),
        any::<u8>().prop_map(Instr::Sys),
        any::<u8>().prop_map(Instr::Trap),
        (reg_strategy(), reg_strategy(), any::<i16>())
            .prop_map(|(dst, base, disp)| Instr::Lea { dst, base, disp }),
    ]
}

proptest! {
    #[test]
    fn instruction_stream_roundtrips(instrs in prop::collection::vec(instr_strategy(), 1..40)) {
        let mut bytes = Vec::new();
        for i in &instrs {
            i.encode(&mut bytes);
        }
        let mut offset = 0usize;
        let mut decoded = Vec::new();
        while offset < bytes.len() {
            let (instr, len) = Instr::decode(&bytes[offset..]).expect("valid stream");
            decoded.push(instr);
            offset += len;
        }
        prop_assert_eq!(decoded, instrs);
    }

    #[test]
    fn disassembler_consumes_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Linear sweep must terminate and account for every byte.
        let lines = swsec_asm::disassemble(&bytes, 0x1000);
        let total: usize = lines.iter().map(|l| l.len).sum();
        prop_assert_eq!(total, bytes.len());
    }
}

// ---------------------------------------------------------------------
// Compiler vs interpreter on safe programs
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SafeExpr {
    Lit(i8),
    Add(Box<SafeExpr>, Box<SafeExpr>),
    Sub(Box<SafeExpr>, Box<SafeExpr>),
    Mul(Box<SafeExpr>, Box<SafeExpr>),
    Xor(Box<SafeExpr>, Box<SafeExpr>),
    Lt(Box<SafeExpr>, Box<SafeExpr>),
    ShlK(Box<SafeExpr>, u8),
}

impl SafeExpr {
    fn to_minc(&self) -> String {
        match self {
            SafeExpr::Lit(v) => format!("({v})"),
            SafeExpr::Add(a, b) => format!("({} + {})", a.to_minc(), b.to_minc()),
            SafeExpr::Sub(a, b) => format!("({} - {})", a.to_minc(), b.to_minc()),
            SafeExpr::Mul(a, b) => format!("({} * {})", a.to_minc(), b.to_minc()),
            SafeExpr::Xor(a, b) => format!("({} ^ {})", a.to_minc(), b.to_minc()),
            SafeExpr::Lt(a, b) => format!("({} < {})", a.to_minc(), b.to_minc()),
            SafeExpr::ShlK(a, k) => format!("({} << {k})", a.to_minc()),
        }
    }
}

fn safe_expr_strategy() -> impl Strategy<Value = SafeExpr> {
    let leaf = any::<i8>().prop_map(SafeExpr::Lit);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SafeExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SafeExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SafeExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SafeExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| SafeExpr::Lt(Box::new(a), Box::new(b))),
            (inner, 0u8..8).prop_map(|(a, k)| SafeExpr::ShlK(Box::new(a), k)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_arithmetic_matches_source_semantics(expr in safe_expr_strategy()) {
        let src = format!("int main() {{ return ({}) & 0xff; }}", expr.to_minc());
        let unit = parse(&src).expect("generated program parses");
        let c = compare(&unit, &[], DefenseConfig::none(), 1, 5_000_000).expect("compiles");
        prop_assert_eq!(c.verdict, Verdict::Equivalent, "src: {}", src);
    }

    #[test]
    fn echo_programs_agree_for_arbitrary_inputs(
        input in prop::collection::vec(any::<u8>(), 0..64),
        buf_len in 1usize..64,
    ) {
        // A *correct* echo server (read length == buffer length) must be
        // equivalent for every input.
        let src = format!(
            "void main() {{ char b[{buf_len}]; int n = read(0, b, {buf_len}); write(1, b, n); }}"
        );
        let unit = parse(&src).expect("parses");
        let c = compare(&unit, &input, DefenseConfig::none(), 1, 5_000_000).expect("compiles");
        prop_assert_eq!(c.verdict, Verdict::Equivalent);
    }

    #[test]
    fn canary_plus_dep_denies_attacker_controlled_behaviour(
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Canaries detect the smash only at function return — *after*
        // the function's own output — so the strict verdict can read
        // "compromised" for the intermediate "OK". What canaries+DEP do
        // guarantee, for every input, is that the attacker never gets
        // control: the run ends in a clean exit 0 or a fault, and the
        // only output ever produced is the program's own.
        let src = "void main() { char b[16]; read(0, b, 64); write(1, \"OK\", 2); }";
        let unit = parse(src).expect("parses");
        let mut cfg = DefenseConfig::none();
        cfg.canary = true;
        cfg.dep = true;
        let mut session = launch(&unit, cfg, 1).expect("compiles");
        session.machine.io_mut().feed_input(0, &payload);
        let outcome = session.run(5_000_000);
        match outcome {
            swsec_vm::cpu::RunOutcome::Halted(code) => prop_assert_eq!(code, 0),
            swsec_vm::cpu::RunOutcome::Fault(_) => {}
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
        let out = session.machine.io().output(1);
        prop_assert!(out == b"" || out == b"OK", "unexpected output {:?}", out);
    }
}

// ---------------------------------------------------------------------
// Sealing and continuity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sealed_blobs_roundtrip_and_reject_any_bitflip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in prop::collection::vec(any::<u8>(), 0..16),
        plaintext in prop::collection::vec(any::<u8>(), 0..64),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let blob = swsec_crypto::seal::seal(&key, &nonce, &aad, &plaintext);
        prop_assert_eq!(
            swsec_crypto::seal::open(&key, &aad, &blob).expect("roundtrip"),
            plaintext
        );
        let mut tampered = blob.clone();
        let idx = flip_byte % tampered.len();
        tampered[idx] ^= 1 << flip_bit;
        prop_assert!(swsec_crypto::seal::open(&key, &aad, &tampered).is_err());
    }

    #[test]
    fn naive_continuity_accepts_any_replay_but_twophase_never_regresses(
        schedule in prop::collection::vec((0u8..3, any::<bool>()), 1..24),
    ) {
        // Random schedule of {save new version, rollback to a random
        // snapshot, load}. The two-phase scheme must never return a
        // version older than the last one it returned.
        let key = ModuleKey([7; 32]);
        let mut platform = Platform::new([1; 32]);
        let counter = platform.alloc_counter();
        let mut scheme = TwoPhaseContinuity::new(key, counter, 0, 1);
        let mut naive = NaiveContinuity::new(key, 9);
        let mut store = UntrustedStore::new();
        let mut snapshots = Vec::new();
        let mut version: u32 = 0;
        let mut floor: u32 = 0;
        let mut naive_regressed = false;

        let encode = |v: u32| v.to_le_bytes().to_vec();
        scheme.save(&mut platform, &mut store, &encode(0), CrashPoint::None);
        naive.save(&mut store, &encode(0));
        snapshots.push(store.snapshot());

        for (op, flag) in schedule {
            match op {
                0 => {
                    version += 1;
                    scheme.save(&mut platform, &mut store, &encode(version), CrashPoint::None);
                    naive.save(&mut store, &encode(version));
                    if flag {
                        snapshots.push(store.snapshot());
                    }
                    floor = floor.max(version);
                }
                1 => {
                    let idx = (flag as usize * snapshots.len() / 2).min(snapshots.len() - 1);
                    store.restore(snapshots[idx].clone());
                }
                _ => {
                    if let Ok(bytes) = scheme.load(&mut platform, &store) {
                        let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
                        prop_assert!(
                            v >= floor,
                            "two-phase regressed from {floor} to {v}"
                        );
                        floor = v;
                    }
                    if let Ok(bytes) = naive.load(&store) {
                        let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
                        if v < floor {
                            naive_regressed = true;
                        }
                    }
                }
            }
        }
        let _ = naive_regressed; // naive MAY regress; two-phase must not.
    }
}

// ---------------------------------------------------------------------
// PMA policy invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn pma_data_rule_invariant(ip in any::<u32>(), addr in any::<u32>()) {
        use swsec_vm::policy::{ProtectedRegion, ProtectionMap};
        let map = ProtectionMap::new(vec![ProtectedRegion::new(
            0x2000..0x3000,
            0x3000..0x4000,
            vec![0x2000],
        )]);
        let addr_inside = (0x2000..0x4000).contains(&addr);
        let ip_in_code = (0x2000..0x3000).contains(&ip);
        let allowed = map.data_access_allowed(ip, addr);
        // The rule, verbatim: access allowed iff the target is not in a
        // module, or the IP executes that module's code.
        prop_assert_eq!(allowed, !addr_inside || ip_in_code);
    }
}
