//! Cross-crate integration: the §IV machine-code attacker pipeline —
//! module compilation, platform loading, isolation, secure compilation,
//! attestation and continuity working together.

use swsec::experiments::{fig4, scraping};
use swsec_attacks::Scraper;
use swsec_pma::platform::Measurement;
use swsec_pma::{attest, ModuleImage, Platform, Verifier};
use swsec_vm::cpu::{Fault, Machine, RunOutcome};
use swsec_vm::isa::trap;
use swsec_vm::mem::Perm;
use swsec_vm::policy::ReentryPolicy;

#[test]
fn full_pipeline_module_protected_and_usable() {
    // Load the Figure 2 module under PMA, call it through its entry
    // point from untrusted host code, and verify both that it works and
    // that its secrets stay invisible.
    let image = scraping::secret_module_image();
    let mut platform = Platform::new([9; 32]);
    let mut m = Machine::new();
    let loaded = platform
        .load_module(&mut m, &image, ReentryPolicy::AllowReturns)
        .unwrap();
    let entry = loaded.export("get_secret").unwrap();

    let host = swsec_asm::assemble(&format!(
        ".org 0x00400000\n\
         pushi 1234\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         sys 0\n"
    ))
    .unwrap();
    m.mem_mut().map(0x0040_0000, 0x1000, Perm::RX).unwrap();
    m.mem_mut().poke_bytes(0x0040_0000, &host.bytes).unwrap();
    m.mem_mut().map(0xbffe_0000, 0x1000, Perm::RW).unwrap();
    m.set_reg(swsec_vm::isa::Reg::Sp, 0xbffe_0ff0);
    m.set_ip(0x0040_0000);

    assert_eq!(m.run(100_000), RunOutcome::Halted(666));
    // Even after a successful call, the module's stored secrets stay
    // invisible. (The PIN value 1234 *does* appear in unprotected
    // memory — the host itself pushed it as the call argument — which
    // is exactly the distinction: the scraper sees the caller's data,
    // never the module's.)
    let hits = Scraper::kernel().scan_word(&m, 1234);
    let module_data =
        scraping::MODULE_DATA_BASE..scraping::MODULE_DATA_BASE + 0x1000;
    assert!(
        hits.iter().all(|a| !module_data.contains(a)),
        "PIN scraped from module data: {hits:08x?}"
    );
    assert!(Scraper::kernel().scan_word(&m, 666).is_empty());
}

#[test]
fn wrong_pin_burns_tries_and_locks_out_across_calls() {
    let image = scraping::secret_module_image();
    let mut platform = Platform::new([9; 32]);
    let mut m = Machine::new();
    let loaded = platform
        .load_module(&mut m, &image, ReentryPolicy::AllowReturns)
        .unwrap();
    let entry = loaded.export("get_secret").unwrap();

    // Host: four calls — three wrong PINs, then the right one. The
    // lockout must make even the right one fail. Sum of results in r7.
    let host = swsec_asm::assemble(&format!(
        ".org 0x00400000\n\
         movi r7, 0\n\
         pushi 1\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         add r7, r0\n\
         pushi 2\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         add r7, r0\n\
         pushi 3\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         add r7, r0\n\
         pushi 1234\n\
         call {entry:#x}\n\
         addi sp, 4\n\
         add r7, r0\n\
         mov r0, r7\n\
         sys 0\n"
    ))
    .unwrap();
    m.mem_mut().map(0x0040_0000, 0x1000, Perm::RX).unwrap();
    m.mem_mut().poke_bytes(0x0040_0000, &host.bytes).unwrap();
    m.mem_mut().map(0xbffe_0000, 0x1000, Perm::RW).unwrap();
    m.set_reg(swsec_vm::isa::Reg::Sp, 0xbffe_0ff0);
    m.set_ip(0x0040_0000);

    assert_eq!(m.run(1_000_000), RunOutcome::Halted(0));
}

#[test]
fn direct_data_write_from_host_faults() {
    let image = scraping::secret_module_image();
    let mut platform = Platform::new([9; 32]);
    let mut m = Machine::new();
    platform
        .load_module(&mut m, &image, ReentryPolicy::EntryPointsOnly)
        .unwrap();
    // Host tries to reset tries_left directly.
    let host = swsec_asm::assemble(&format!(
        ".org 0x00400000\n\
         movi r1, {:#x}\n\
         movi r0, 3\n\
         store [r1], r0\n\
         sys 0\n",
        scraping::MODULE_DATA_BASE
    ))
    .unwrap();
    m.mem_mut().map(0x0040_0000, 0x1000, Perm::RX).unwrap();
    m.mem_mut().poke_bytes(0x0040_0000, &host.bytes).unwrap();
    m.set_ip(0x0040_0000);
    assert!(matches!(m.run(100), RunOutcome::Fault(Fault::Pma(_))));
}

#[test]
fn secure_compilation_defends_figure4_module_end_to_end() {
    let secure = fig4::build_module(4321, true);
    // Attack call trapped.
    let (outcome, tries) = fig4::single_call(&secure, fig4::FnPtrChoice::ResetGadget, 0);
    assert!(matches!(
        outcome,
        RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::FNPTR
    ));
    assert_eq!(tries, 3);
    // Honest call unharmed.
    let (outcome, _) = fig4::single_call(&secure, fig4::FnPtrChoice::HonestGetPin, 4321);
    assert_eq!(outcome, RunOutcome::Halted(666));
}

#[test]
fn attestation_binds_the_secure_compilation() {
    // The verifier expects the *securely compiled* module. The OS
    // silently swapping in the naive build (e.g. to re-enable the
    // Figure 4 attack) is caught by attestation.
    let naive = fig4::build_module(1234, false);
    let secure = fig4::build_module(1234, true);
    let platform = Platform::new([5; 32]);
    let expected = Measurement::of(&secure.image);
    let mut verifier = Verifier::new(expected, platform.derive_key(expected));
    let nonce = verifier.challenge(1);
    // Platform loads the naive module: derives the naive key.
    let naive_key = platform.derive_key(Measurement::of(&naive.image));
    let report = attest(&naive_key, nonce, b"");
    assert!(!verifier.verify(nonce, &report), "downgrade must be detected");
    // Honest load verifies.
    let nonce2 = verifier.challenge(2);
    let good = attest(&platform.derive_key(expected), nonce2, b"");
    assert!(verifier.verify(nonce2, &good));
}

#[test]
fn raw_byte_module_and_compiled_module_coexist() {
    // Two modules on one machine, mutually isolated.
    let compiled = scraping::secret_module_image();
    let raw = ModuleImage::from_raw(
        vec![0x22; 32],
        7777u32.to_le_bytes().to_vec(),
        0x0b00_0000,
        0x0b10_0000,
        vec![0],
    );
    let mut platform = Platform::new([3; 32]);
    let mut m = Machine::new();
    platform
        .load_module(&mut m, &compiled, ReentryPolicy::EntryPointsOnly)
        .unwrap();
    platform
        .load_module(&mut m, &raw, ReentryPolicy::EntryPointsOnly)
        .unwrap();
    let pma = m.protection().unwrap();
    assert_eq!(pma.regions().len(), 2);
    // Module A's code cannot read module B's data and vice versa.
    assert!(pma.check_data(scraping::MODULE_CODE_BASE + 4, 0x0b10_0000).is_err());
    assert!(pma.check_data(0x0b00_0004, scraping::MODULE_DATA_BASE).is_err());
    // Nobody scrapes either secret.
    let kernel = Scraper::kernel();
    assert!(kernel.scan_word(&m, 666).is_empty());
    assert!(kernel.scan_word(&m, 7777).is_empty());
}
