//! Cross-crate integration: complete attack workflows from MinC source
//! through compilation, loading, payload delivery and verdict — the
//! full §III pipeline exercised end to end.

use swsec::prelude::*;
use swsec_attacks::Payload;
use swsec_minc::parse;
use swsec_vm::cpu::{Fault, RunOutcome};
use swsec_vm::isa::trap;

const VULN_SERVER: &str = "\
void handle(int fd) {\n\
    char buf[16];\n\
    read(fd, buf, 64);\n\
    write(1, \"OK\", 2);\n\
}\n\
void main() { handle(0); }\n";

#[test]
fn the_security_objective_holds_for_benign_runs() {
    let unit = parse(VULN_SERVER).unwrap();
    for input in [&b""[..], b"hi", &[0u8; 16]] {
        let c = compare(&unit, input, DefenseConfig::none(), 3, 1_000_000).unwrap();
        assert_eq!(c.verdict, Verdict::Equivalent, "input {input:?}");
    }
}

#[test]
fn overflow_based_hijack_is_judged_compromised() {
    // Redirect the return into the middle of _start so the machine
    // exits with a code the source cannot produce.
    let unit = parse(VULN_SERVER).unwrap();
    let session = launch(&unit, DefenseConfig::none(), 3).unwrap();
    let exit_path = swsec_attacks::find_instr_addr(
        &session.program.text,
        session.program.text_base,
        |i| matches!(i, swsec_vm::isa::Instr::Sys(0)),
    )
    .unwrap();
    // r0 at that point is the return value of handle()'s frame chaos —
    // any exit is fine as long as output/exit deviate. Use the ROP-style
    // single-word redirect.
    let payload = Payload::smash(&session.program.frames["handle"], "buf", exit_path)
        .unwrap()
        .build();
    let c = compare(&unit, &payload, DefenseConfig::none(), 3, 1_000_000).unwrap();
    match c.verdict {
        Verdict::Compromised { .. } => {}
        // Depending on residual register contents the hijacked exit may
        // coincide with code 0 — then output "OK" is still missing,
        // which is also a compromise; anything judged Equivalent would
        // be a bug.
        other => panic!("expected compromise, got {other}"),
    }
}

#[test]
fn all_attacks_fail_against_full_memory_safety() {
    let mut cfg = DefenseConfig::none();
    cfg.bounds_checks = true;
    for t in Technique::ALL {
        let r = run_technique(t, cfg, 11).unwrap();
        assert!(!r.outcome.succeeded(), "{t}");
    }
}

#[test]
fn attack_results_are_deterministic_per_seed() {
    for t in Technique::ALL {
        let a = run_technique(t, DefenseConfig::modern(8), 77).unwrap();
        let b = run_technique(t, DefenseConfig::modern(8), 77).unwrap();
        assert_eq!(a.outcome, b.outcome, "{t}");
    }
}

#[test]
fn canary_trap_reports_the_canary_code() {
    let unit = parse(VULN_SERVER).unwrap();
    let mut cfg = DefenseConfig::none();
    cfg.canary = true;
    let mut session = launch(&unit, cfg, 5).unwrap();
    session.machine.io_mut().feed_input(0, &[0xEE; 64]);
    let outcome = session.run(1_000_000);
    assert!(
        matches!(
            outcome,
            RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::CANARY
        ),
        "{outcome:?}"
    );
}

#[test]
fn canary_values_differ_across_launches_and_payloads_with_stale_canaries_die() {
    let unit = parse(VULN_SERVER).unwrap();
    let mut cfg = DefenseConfig::none();
    cfg.canary = true;
    let a = launch(&unit, cfg, 1).unwrap();
    let b = launch(&unit, cfg, 2).unwrap();
    let (ca, cb) = (a.canary_value.unwrap(), b.canary_value.unwrap());
    assert_ne!(ca, cb);

    // An attacker who learned launch 1's canary and replays it against
    // launch 2 is caught.
    let frame = b.program.frames["handle"].clone();
    let payload = Payload::new()
        .pad(16, b'A')
        .word(ca) // stale canary
        .word(0xbfff_0000)
        .word(0x0804_8000)
        .build();
    let mut session = b;
    session.machine.io_mut().feed_input(0, &payload);
    let outcome = session.run(1_000_000);
    assert!(matches!(
        outcome,
        RunOutcome::Fault(Fault::SoftwareTrap { code, .. }) if code == trap::CANARY
    ));
    let _ = frame;
}

#[test]
fn aslr_moves_the_stack_and_text_between_launches() {
    let unit = parse(VULN_SERVER).unwrap();
    let mut cfg = DefenseConfig::none();
    cfg.aslr_bits = Some(8);
    let addrs: Vec<u32> = (0..4)
        .map(|seed| {
            let s = launch(&unit, cfg, seed).unwrap();
            s.local_addr(&[("main", 0), ("handle", 1)], "buf").unwrap()
        })
        .collect();
    let distinct: std::collections::HashSet<_> = addrs.iter().collect();
    assert!(distinct.len() >= 3, "stack barely randomized: {addrs:08x?}");
}

#[test]
fn data_only_attack_changes_decision_without_touching_control_flow() {
    // Direct demonstration at the machine level, under the full modern
    // stack: is_admin flips, the canary survives, the run exits cleanly.
    let unit = parse(swsec::attacker::VICTIM_ADMIN).unwrap();
    let cfg = DefenseConfig::modern(8);
    let mut session = launch(&unit, cfg, 21).unwrap();
    let payload = Payload::new().pad(16, b'A').word(1).build();
    session.machine.io_mut().feed_input(0, &payload);
    let outcome = session.run(1_000_000);
    assert!(outcome.is_halted(), "{outcome:?}");
    let out = session.machine.io().output(1).to_vec();
    assert_eq!(out, b"SECRET");
}
