//! Campaign API contract: the registry is complete, reports are
//! byte-identical at any worker count, and the compile cache means a
//! repeated grid costs zero compiles.

use swsec::campaign::{run_campaign, CampaignConfig, CampaignCtx};
use swsec::experiments::registry;
use swsec::report::ExperimentId;

/// A small-but-real slice of the suite: two grids (E3, E14) plus two
/// single-shot experiments, so the determinism check exercises the
/// work-stealing pool with dozens of cells.
fn determinism_config() -> CampaignConfig {
    CampaignConfig {
        experiments: vec![
            ExperimentId::new(1),
            ExperimentId::new(3),
            ExperimentId::new(10),
            ExperimentId::new(14),
        ],
        ..CampaignConfig::quick()
    }
}

#[test]
fn registry_contains_exactly_e1_to_e15() {
    let ids: Vec<ExperimentId> = registry().iter().map(|e| e.id()).collect();
    assert_eq!(ids, ExperimentId::ALL.to_vec());
    for e in registry() {
        assert!(!e.title().is_empty());
        assert!(e.cells(&CampaignConfig::default()) >= 1, "{}", e.id());
    }
}

#[test]
fn same_seed_renders_identically_across_worker_counts() {
    let mut cfg = determinism_config();
    let mut renders = Vec::new();
    for workers in [1, 4, 8] {
        cfg.workers = workers;
        let report = run_campaign(&cfg);
        assert_eq!(report.reports.len(), 4);
        renders.push(report.render());
    }
    assert_eq!(renders[0], renders[1], "1 vs 4 workers");
    assert_eq!(renders[0], renders[2], "1 vs 8 workers");
    assert!(renders[0].contains("# E3"));
    assert!(renders[0].contains("COMPROMISED"));
}

#[test]
fn different_master_seeds_change_derived_cell_seeds() {
    let a = CampaignConfig::default();
    let b = CampaignConfig {
        master_seed: a.master_seed + 1,
        ..CampaignConfig::default()
    };
    assert_ne!(
        a.cell_seed(ExperimentId::new(3), 0),
        b.cell_seed(ExperimentId::new(3), 0)
    );
}

#[test]
fn second_matrix_run_compiles_nothing() {
    let cfg = CampaignConfig::quick();
    let ctx = CampaignCtx::new();
    let matrix = registry()[ExperimentId::new(3).index()];

    let first = matrix.run_with(&cfg, &ctx);
    let after_first = ctx.cache.stats();
    assert!(after_first.misses > 0, "first run must compile something");

    let second = matrix.run_with(&cfg, &ctx);
    let after_second = ctx.cache.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second run must be served entirely from the cache"
    );
    assert_eq!(after_second.parses, after_first.parses);
    assert!(after_second.hits > after_first.hits);
    assert_eq!(first.render(), second.render());
}

#[test]
fn campaign_summary_reports_all_selected_experiments() {
    let cfg = determinism_config();
    let report = run_campaign(&cfg);
    assert_eq!(report.timings.len(), 4);
    // E3 decomposes into the full 56-cell grid.
    let e3 = report
        .timings
        .iter()
        .find(|t| t.id == ExperimentId::new(3))
        .unwrap();
    assert_eq!(e3.cells, 56);
    let summary = report.summary();
    assert_eq!(summary.rows.len(), 4);
    assert!(report.cache.hits + report.cache.misses > 0);
    // The campaign's machines ran real instructions and their hot-path
    // counters reached the summary header.
    assert!(report.vm.instructions > 0);
    assert!(summary.title.contains("icache"));
    assert!(summary.title.contains("tlb"));
}

#[test]
fn vm_caches_do_not_change_a_single_render_byte() {
    // The decoded-instruction cache and the memory TLBs are pure
    // speedups: with them disabled, every experiment report — and
    // hence the whole campaign render — must be byte-identical.
    let cfg = determinism_config();
    let cached = run_campaign(&cfg).render();

    swsec_vm::cpu::set_default_fast_path(false);
    let uncached = run_campaign(&cfg).render();
    swsec_vm::cpu::set_default_fast_path(true);

    assert_eq!(cached, uncached, "caches must be semantically invisible");
}
