//! Campaign API contract: the registry is complete, reports are
//! byte-identical at any worker count (and with or without event
//! sinks attached), and the compile cache means a repeated grid costs
//! zero compiles.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swsec::campaign::{run_campaign, run_campaign_on, CampaignConfig, CampaignCtx, CampaignTelemetry};
use swsec::experiments::registry;
use swsec::faults::FaultyExperiment;
use swsec::report::ExperimentId;
use swsec_obs::jsonl::parse_line;
use swsec_obs::{
    clear_default_sink, set_default_sink, EventMask, JsonlSink, Record, SecurityEvent,
};

/// A small-but-real slice of the suite: two grids (E3, E14) plus two
/// single-shot experiments, so the determinism check exercises the
/// work-stealing pool with dozens of cells.
fn determinism_config() -> CampaignConfig {
    CampaignConfig {
        experiments: vec![
            ExperimentId::new(1),
            ExperimentId::new(3),
            ExperimentId::new(10),
            ExperimentId::new(14),
        ],
        ..CampaignConfig::quick()
    }
}

#[test]
fn registry_contains_exactly_e1_to_e16() {
    let ids: Vec<ExperimentId> = registry().iter().map(|e| e.id()).collect();
    assert_eq!(ids, ExperimentId::ALL.to_vec());
    for e in registry() {
        assert!(!e.title().is_empty());
        assert!(e.cells(&CampaignConfig::default()) >= 1, "{}", e.id());
    }
}

#[test]
fn same_seed_renders_identically_across_worker_counts() {
    let mut cfg = determinism_config();
    let mut renders = Vec::new();
    for workers in [1, 4, 8] {
        cfg.workers = workers;
        let report = run_campaign(&cfg);
        assert_eq!(report.reports.len(), 4);
        renders.push(report.render());
    }
    assert_eq!(renders[0], renders[1], "1 vs 4 workers");
    assert_eq!(renders[0], renders[2], "1 vs 8 workers");
    assert!(renders[0].contains("# E3"));
    assert!(renders[0].contains("COMPROMISED"));
}

#[test]
fn different_master_seeds_change_derived_cell_seeds() {
    let a = CampaignConfig::default();
    let b = CampaignConfig {
        master_seed: a.master_seed + 1,
        ..CampaignConfig::default()
    };
    assert_ne!(
        a.cell_seed(ExperimentId::new(3), 0),
        b.cell_seed(ExperimentId::new(3), 0)
    );
}

#[test]
fn second_matrix_run_compiles_nothing() {
    let cfg = CampaignConfig::quick();
    let ctx = CampaignCtx::new();
    let matrix = registry()[ExperimentId::new(3).index()];

    let first = matrix.run_with(&cfg, &ctx);
    let after_first = ctx.cache.stats();
    assert!(after_first.misses > 0, "first run must compile something");

    let second = matrix.run_with(&cfg, &ctx);
    let after_second = ctx.cache.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second run must be served entirely from the cache"
    );
    assert_eq!(after_second.parses, after_first.parses);
    assert!(after_second.hits > after_first.hits);
    assert_eq!(first.render(), second.render());
}

#[test]
fn campaign_summary_reports_all_selected_experiments() {
    let cfg = determinism_config();
    let report = run_campaign(&cfg);
    assert_eq!(report.timings.len(), 4);
    // E3 decomposes into the full 56-cell grid.
    let e3 = report
        .timings
        .iter()
        .find(|t| t.id == ExperimentId::new(3))
        .unwrap();
    assert_eq!(e3.cells, 56);
    let summary = report.summary();
    assert_eq!(summary.rows.len(), 4);
    assert!(report.cache.hits + report.cache.misses > 0);
    // The campaign's machines ran real instructions and their hot-path
    // counters reached the summary header.
    assert!(report.vm.instructions > 0);
    assert!(summary.title.contains("icache"));
    assert!(summary.title.contains("tlb"));
    assert!(summary.title.contains("tier2"));
}

#[test]
fn vm_caches_do_not_change_a_single_render_byte() {
    // The decoded-instruction cache and the memory TLBs are pure
    // speedups: with them disabled, every experiment report — and
    // hence the whole campaign render — must be byte-identical.
    let cfg = determinism_config();
    let cached = run_campaign(&cfg).render();

    swsec_vm::cpu::set_default_fast_path(false);
    let uncached = run_campaign(&cfg).render();
    swsec_vm::cpu::set_default_fast_path(true);

    assert_eq!(cached, uncached, "caches must be semantically invisible");

    // Same bar for the tier-2 block engine: fast path on, blocks off.
    swsec_vm::cpu::set_default_tier2(false);
    let untiered = run_campaign(&cfg).render();
    swsec_vm::cpu::set_default_tier2(true);

    assert_eq!(cached, untiered, "tier 2 must be semantically invisible");
}

/// A `Write` handle into a shared buffer, so the test can read what
/// the JSONL sink wrote after dropping the sink.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn event_sinks_change_no_render_byte_and_jsonl_captures_attacks() {
    // The observability acceptance test, in one process pass: run the
    // full quick suite with no sink, then again with a JSONL event
    // sink installed as the process default. The rendered reports must
    // be byte-identical, and the telemetry dump must parse line by
    // line and contain the attack experiments' canary trips and PMA
    // violations.
    let cfg = CampaignConfig::quick();
    let baseline = run_campaign(&cfg).render();

    let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let security = EventMask::FAULT
        .union(EventMask::CANARY)
        .union(EventMask::PMA)
        .union(EventMask::GUARD);
    let sink = Arc::new(JsonlSink::with_interests(
        Box::new(SharedBuf(buf.clone())),
        security,
    ));
    set_default_sink(sink.clone());
    let observed = run_campaign(&cfg).render();
    clear_default_sink();
    sink.flush();

    assert_eq!(
        observed, baseline,
        "attaching an event sink must not change a single render byte"
    );

    let bytes = buf.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("telemetry is UTF-8");
    let (mut canary_trips, mut pma_violations, mut lines) = (0u64, 0u64, 0u64);
    for line in text.lines().filter(|l| !l.is_empty()) {
        lines += 1;
        match parse_line(line).unwrap_or_else(|e| panic!("bad telemetry line {line:?}: {e}")) {
            Record::Event(SecurityEvent::CanaryTrip { .. }) => canary_trips += 1,
            Record::Event(SecurityEvent::PmaViolation { .. }) => pma_violations += 1,
            _ => {}
        }
    }
    assert!(lines > 0, "the quick campaign must emit telemetry");
    assert!(canary_trips >= 1, "no CanaryTrip event in the dump");
    assert!(pma_violations >= 1, "no PmaViolation event in the dump");
}

#[test]
fn profiler_and_spans_are_deterministic_across_worker_counts() {
    use swsec::campaign::run_campaign_with;
    use swsec_obs::{SpanMask, SymbolTable};
    use swsec_vm::profile::Profiler;

    // Spans + profiler at 1 vs 4 workers: the render, the span tree
    // and the folded profile must all be byte-identical — sequence
    // clocks and retired-instruction sampling are functions of the
    // seed, never of scheduling.
    let mut cfg = determinism_config();
    let mut runs = Vec::new();
    for workers in [1usize, 4] {
        cfg.workers = workers;
        // A fine interval: the countdown re-arms at every attempt
        // boundary (that is what makes fork == rebuild), so an
        // attempt shorter than the interval contributes no samples.
        let prof = Arc::new(Profiler::new(256));
        let telemetry = CampaignTelemetry::none()
            .with_spans(SpanMask::DEFAULT)
            .with_profiler(prof.clone());
        let report = run_campaign_with(&cfg, &telemetry);
        assert!(report.all_ok());
        assert!(report.vm.prof_samples > 0, "no samples at {workers} workers");
        runs.push((
            report.render(),
            report.span_tree(),
            prof.folded(&SymbolTable::empty()),
        ));
    }
    assert_eq!(runs[0].0, runs[1].0, "render 1 vs 4 workers");
    assert_eq!(runs[0].1, runs[1].1, "span tree 1 vs 4 workers");
    assert_eq!(runs[0].2, runs[1].2, "folded profile 1 vs 4 workers");

    // The tree has the campaign root, per-cell spans, and nested boot
    // spans from the fork servers' launches.
    assert!(runs[0].1.contains("campaign"));
    assert!(runs[0].1.contains("cell E3"));
    assert!(runs[0].1.contains("boot"));
    assert!(!runs[0].2.is_empty());

    // And attaching the hooks changed no render byte.
    let baseline = run_campaign(&cfg).render();
    assert_eq!(runs[0].0, baseline);
}

/// A deadline comfortably under the fault demo's ~2 s stall cell yet
/// far above what any healthy quick cell needs in debug builds.
fn fault_config(workers: usize) -> CampaignConfig {
    CampaignConfig {
        workers,
        cell_deadline: Duration::from_secs(1),
        cell_retries: 1,
        ..CampaignConfig::quick()
    }
}

#[test]
fn failing_cells_do_not_disturb_healthy_experiment_output() {
    // A campaign mixing a healthy experiment with the fault demo must
    // run to completion, report the failures, and leave the healthy
    // experiment's report byte-for-byte what a clean run produces.
    let e10 = registry()[ExperimentId::new(10).index()];
    let mixed = run_campaign_on(
        &fault_config(2),
        &[e10, FaultyExperiment::fresh()],
        &CampaignTelemetry::none(),
    );
    assert!(!mixed.all_ok());
    assert_eq!(mixed.failed_cells().len(), 2, "panic + timeout cells");
    assert!(mixed.render().contains("## failed cells"));

    let solo = run_campaign_on(&fault_config(2), &[e10], &CampaignTelemetry::none());
    assert!(solo.all_ok());
    assert!(!solo.render().contains("failed cells"));
    assert_eq!(mixed.reports[0], solo.reports[0]);

    // And the whole mixed render — failures included — is
    // byte-identical across worker counts (fresh demo instances per
    // run restart the flaky cell's attempt state).
    let mixed4 = run_campaign_on(
        &fault_config(4),
        &[e10, FaultyExperiment::fresh()],
        &CampaignTelemetry::none(),
    );
    assert_eq!(mixed.render(), mixed4.render());
}

#[test]
fn crash_matrix_is_deterministic_across_worker_counts() {
    let mut cfg = CampaignConfig {
        experiments: vec![ExperimentId::new(16)],
        ..CampaignConfig::quick()
    };
    let mut renders = Vec::new();
    for workers in [1, 4] {
        cfg.workers = workers;
        let report = run_campaign(&cfg);
        assert!(report.all_ok(), "the crash matrix itself must pass");
        renders.push(report.render());
    }
    assert_eq!(renders[0], renders[1], "1 vs 4 workers");
    assert!(renders[0].contains("E16a"));
    assert!(renders[0].contains("E16b"));
    assert!(renders[0].contains("E16c"));
}

#[test]
fn failed_cells_reach_the_jsonl_telemetry() {
    let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    // CELL-only interests: other tests' campaigns running concurrently
    // contribute no security events to this buffer.
    let sink = Arc::new(JsonlSink::with_interests(
        Box::new(SharedBuf(buf.clone())),
        EventMask::CELL,
    ));
    set_default_sink(sink.clone());
    let report = run_campaign_on(
        &fault_config(2),
        &[FaultyExperiment::fresh()],
        &CampaignTelemetry::none(),
    );
    clear_default_sink();
    sink.flush();
    assert_eq!(report.failed_cells().len(), 2);

    let bytes = buf.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("telemetry is UTF-8");
    let cell_failed = text
        .lines()
        .filter(|l| !l.is_empty())
        .filter(|line| {
            matches!(
                parse_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}")),
                Record::Event(SecurityEvent::CellFailed { .. })
            )
        })
        .count();
    assert!(
        cell_failed >= 2,
        "expected CellFailed events for the panic and timeout cells, saw {cell_failed}"
    );
}
