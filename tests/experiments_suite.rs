//! One integration test per experiment: regenerates each figure/table
//! driver and asserts the *shape* of the result the paper claims.
//! `EXPERIMENTS.md` documents the same shapes in prose.

use swsec::cache::ProgramCache;
use swsec::experiments::*;
use swsec::harness::ServeMode;

#[test]
fn e1_figure1_layout() {
    let report = fig1::compute(&ProgramCache::new(), 1);
    assert_eq!(report.facts.saved_bp_slot, report.facts.buf_addr + 16);
    assert_eq!(report.facts.ret_slot, report.facts.saved_bp_slot + 4);
    assert_eq!(report.facts.buf_word0, 0x4443_4241); // "ABCD" little-endian
}

#[test]
fn e2_catalogue() {
    let c = catalogue::compute(42, &ProgramCache::new());
    assert!(c.vulnerabilities.iter().all(|v| v.source_trapped));
    assert!(c.attacks.iter().all(|(_, ok, _)| *ok));
}

#[test]
fn e3_matrix_shape() {
    let m = matrix::compute(42, &ProgramCache::new());
    let per_config = m.compromises_per_config();
    // none > modern > bounds; every single mitigation leaks something.
    assert_eq!(*per_config.first().unwrap(), 7);
    assert_eq!(*per_config.last().unwrap(), 0);
    assert!(per_config[5] >= 1 && per_config[5] < per_config[0]);
}

#[test]
fn e4_aslr_scaling() {
    let sweep = aslr::compute(&[2, 4], 6, 11, &ProgramCache::new(), ServeMode::Fork);
    assert!(sweep.rows[1].mean_attempts > sweep.rows[0].mean_attempts);
    assert_eq!(sweep.rows[0].leak_attempts, 1);
}

#[test]
fn e5_overhead_shape() {
    let report = overhead::compute();
    for r in report
        .rows
        .iter()
        .filter(|r| r.workload != "call-heavy")
    {
        assert!(r.bounds > r.canary, "{}: {} vs {}", r.workload, r.bounds, r.canary);
    }
}

#[test]
fn e6_analysis_tradeoffs() {
    let r = analysis::compute();
    assert_eq!(r.precise.false_positives, 0);
    assert!(r.paranoid.true_positives >= r.precise.true_positives);
    assert!(r.runtime_with_trigger.true_positives > r.runtime_benign_only.true_positives);
}

#[test]
fn e7_scraping() {
    let r = scraping::compute();
    assert!(r.trials.iter().filter(|t| !t.protected).all(|t| t.found_secret));
    assert!(r.trials.iter().filter(|t| t.protected).all(|t| !t.found_secret));
}

#[test]
fn e8_rules() {
    assert!(pma_rules::compute().all_match());
}

#[test]
fn e9_secure_compilation() {
    let r = fig4::compute();
    assert!(!r.honest_brute.found);
    assert!(r.naive_brute.found);
    assert!(r.secure_brute.trapped && !r.secure_brute.found);
}

#[test]
fn e10_attestation() {
    assert!(attest::compute().all_match());
}

#[test]
fn e11_continuity() {
    let r = continuity::compute();
    let naive = r.rollback.iter().find(|(s, _)| *s == continuity::Scheme::Naive).unwrap();
    assert!(naive.1.found);
    for (s, result) in r.rollback.iter().filter(|(s, _)| *s != continuity::Scheme::Naive) {
        assert!(!result.found, "{s:?}");
    }
    // Liveness: the plain counter bricks somewhere; two-phase never.
    let counter = r
        .liveness
        .iter()
        .find(|(s, _)| *s == continuity::Scheme::Counter)
        .unwrap();
    assert!(counter.1.outcomes.iter().any(|(_, recovered, _)| !recovered));
    let two_phase = r
        .liveness
        .iter()
        .find(|(s, _)| *s == continuity::Scheme::TwoPhase)
        .unwrap();
    assert!(two_phase.1.outcomes.iter().all(|(_, recovered, _)| *recovered));
}

#[test]
fn e13_strict_reentry() {
    assert!(strict_reentry::compute().all_ok());
}

#[test]
fn e14_canary_oracle() {
    let r = canary_oracle::compute(31, 2048, &ProgramCache::new(), ServeMode::Fork);
    assert!(r.forking.recovered && r.forking.smash_succeeded);
    assert!(r.forking.attempts <= 1024);
    assert!(!r.fresh.smash_succeeded);
}

#[test]
fn e15_heap_uaf() {
    let r = heap_uaf::compute();
    assert!(r.trials.iter().any(|t| t.compromised));
    assert!(r
        .trials
        .iter()
        .filter(|t| t.allocator == "quarantine")
        .all(|t| !t.compromised));
}

#[test]
fn e12_pma_cost() {
    let r = pma_cost::compute();
    assert!(r.cost.secure_instructions > r.cost.naive_instructions);
}

#[test]
fn all_tables_render_nonempty() {
    let cache = ProgramCache::new();
    let mut rendered = String::new();
    for t in catalogue::compute(42, &cache).tables() {
        rendered.push_str(&t.to_string());
    }
    rendered.push_str(&matrix::compute(42, &cache).table().to_string());
    rendered.push_str(&overhead::compute().table().to_string());
    rendered.push_str(&analysis::compute().table().to_string());
    rendered.push_str(&scraping::compute().table().to_string());
    rendered.push_str(&pma_rules::compute().table().to_string());
    for t in fig4::compute().tables() {
        rendered.push_str(&t.to_string());
    }
    rendered.push_str(&attest::compute().table().to_string());
    for t in continuity::compute().tables() {
        rendered.push_str(&t.to_string());
    }
    rendered.push_str(&pma_cost::compute().table().to_string());
    rendered.push_str(&strict_reentry::compute().table().to_string());
    rendered.push_str(
        &canary_oracle::compute(31, 2048, &cache, ServeMode::Fork)
            .table()
            .to_string(),
    );
    rendered.push_str(&heap_uaf::compute().table().to_string());
    assert!(rendered.len() > 2000);
    assert!(rendered.contains("COMPROMISED"));
    assert!(rendered.contains("BRICKED"));
}
