//! Statement-level compiler fuzzing: generate whole safe MinC programs
//! (declarations, assignments, bounded loops, branches, in-bounds
//! array traffic, function calls) and assert that the compiled machine
//! and the reference interpreter agree observationally on every one.
//!
//! This is the strongest evidence behind the equivalence harness: if
//! compiler and interpreter disagreed anywhere in this program family,
//! every attack verdict built on their comparison would be suspect.
//
// Gated behind the non-default `proptest-tests` feature: the default
// workspace must build with zero network access, and `proptest` is a
// registry dependency. Enable with `--features proptest-tests` after
// restoring `proptest` to [dev-dependencies].
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

use swsec::prelude::*;
use swsec_minc::parse;

/// A generated safe statement. All array indices are masked in-bounds,
/// all loops have literal bounds, all arithmetic avoids division.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `x<i> = <expr>;`
    Assign(usize, GenExpr),
    /// `a[<expr> & 7] = <expr>;`
    ArrayStore(GenExpr, GenExpr),
    /// `x<i> = a[<expr> & 7];`
    ArrayLoad(usize, GenExpr),
    /// `if (<expr>) { … } else { … }`
    If(GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    /// `for (int k = 0; k < n; k++) { … }` with literal `n`.
    For(u8, Vec<GenStmt>),
    /// `x<i> = twist(<expr>);` — a call to a helper function.
    Call(usize, GenExpr),
}

#[derive(Debug, Clone)]
enum GenExpr {
    Lit(i16),
    Var(usize),
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    Xor(Box<GenExpr>, Box<GenExpr>),
    Lt(Box<GenExpr>, Box<GenExpr>),
}

const NUM_VARS: usize = 4;

impl GenExpr {
    fn to_minc(&self) -> String {
        match self {
            GenExpr::Lit(v) => format!("({v})"),
            GenExpr::Var(i) => format!("x{}", i % NUM_VARS),
            GenExpr::Add(a, b) => format!("({} + {})", a.to_minc(), b.to_minc()),
            GenExpr::Sub(a, b) => format!("({} - {})", a.to_minc(), b.to_minc()),
            GenExpr::Mul(a, b) => format!("({} * {})", a.to_minc(), b.to_minc()),
            GenExpr::Xor(a, b) => format!("({} ^ {})", a.to_minc(), b.to_minc()),
            GenExpr::Lt(a, b) => format!("({} < {})", a.to_minc(), b.to_minc()),
        }
    }
}

impl GenStmt {
    fn to_minc(&self, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match self {
            GenStmt::Assign(i, e) => {
                out.push_str(&format!("{pad}x{} = {};\n", i % NUM_VARS, e.to_minc()));
            }
            GenStmt::ArrayStore(idx, val) => {
                out.push_str(&format!(
                    "{pad}a[{} & 7] = {};\n",
                    idx.to_minc(),
                    val.to_minc()
                ));
            }
            GenStmt::ArrayLoad(i, idx) => {
                out.push_str(&format!(
                    "{pad}x{} = a[{} & 7];\n",
                    i % NUM_VARS,
                    idx.to_minc()
                ));
            }
            GenStmt::If(cond, then_body, else_body) => {
                out.push_str(&format!("{pad}if ({}) {{\n", cond.to_minc()));
                for s in then_body {
                    s.to_minc(out, indent + 1);
                }
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in else_body {
                    s.to_minc(out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::For(n, body) => {
                let n = n % 6;
                out.push_str(&format!("{pad}for (int k = 0; k < {n}; k++) {{\n"));
                for s in body {
                    s.to_minc(out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            GenStmt::Call(i, e) => {
                out.push_str(&format!(
                    "{pad}x{} = twist({});\n",
                    i % NUM_VARS,
                    e.to_minc()
                ));
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        any::<i16>().prop_map(GenExpr::Lit),
        (0..NUM_VARS).prop_map(GenExpr::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| GenExpr::Lt(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = GenStmt> {
    let leaf = prop_oneof![
        ((0..NUM_VARS), expr_strategy()).prop_map(|(i, e)| GenStmt::Assign(i, e)),
        (expr_strategy(), expr_strategy()).prop_map(|(i, v)| GenStmt::ArrayStore(i, v)),
        ((0..NUM_VARS), expr_strategy()).prop_map(|(i, e)| GenStmt::ArrayLoad(i, e)),
        ((0..NUM_VARS), expr_strategy()).prop_map(|(i, e)| GenStmt::Call(i, e)),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| GenStmt::If(c, t, e)),
            (any::<u8>(), prop::collection::vec(inner, 0..3))
                .prop_map(|(n, b)| GenStmt::For(n, b)),
        ]
    })
}

fn render_program(stmts: &[GenStmt]) -> String {
    let mut body = String::new();
    for s in stmts {
        s.to_minc(&mut body, 1);
    }
    format!(
        "int twist(int v) {{ return (v * 31) ^ (v >> 3); }}\n\
         int main() {{\n\
             int a[8];\n\
             for (int i = 0; i < 8; i++) a[i] = i * 3;\n\
             int x0 = 1; int x1 = 2; int x2 = 3; int x3 = 4;\n\
         {body}\
             int acc = x0 ^ x1 ^ x2 ^ x3;\n\
             for (int i = 0; i < 8; i++) acc = acc ^ a[i];\n\
             return acc & 0xff;\n\
         }}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_safe_programs_are_observationally_equivalent(
        stmts in prop::collection::vec(stmt_strategy(), 0..10),
    ) {
        let src = render_program(&stmts);
        let unit = parse(&src).expect("generated program parses");
        let c = compare(&unit, &[], DefenseConfig::none(), 1, 20_000_000)
            .expect("generated program compiles");
        prop_assert_eq!(
            c.verdict, Verdict::Equivalent,
            "\nprogram:\n{}\nreference: {:?}\nmachine: {:?}",
            src, c.reference_outcome, c.machine_outcome
        );
    }

    #[test]
    fn generated_programs_stay_equivalent_under_hardening(
        stmts in prop::collection::vec(stmt_strategy(), 0..6),
    ) {
        // Hardening must be semantics-preserving for safe programs.
        let src = render_program(&stmts);
        let unit = parse(&src).expect("generated program parses");
        let mut cfg = DefenseConfig::none();
        cfg.canary = true;
        cfg.bounds_checks = true;
        cfg.dep = true;
        let c = compare(&unit, &[], cfg, 1, 20_000_000).expect("compiles");
        prop_assert_eq!(
            c.verdict, Verdict::Equivalent,
            "\nprogram:\n{}\nreference: {:?}\nmachine: {:?}",
            src, c.reference_outcome, c.machine_outcome
        );
    }
}
