//! Property-based tests over the fuzzing engine's building blocks:
//! mutator purity and length invariants, generator totality, and
//! minimizer class preservation.
//
// Gated behind the non-default `proptest-tests` feature: the default
// workspace must build with zero network access, and `proptest` is a
// registry dependency. Enable with `--features proptest-tests` after
// restoring `proptest` to [dev-dependencies].
#![cfg(feature = "proptest-tests")]

use std::sync::Arc;

use proptest::prelude::*;

use swsec::harness::{AttackTarget, AttemptOutcome};
use swsec_fuzz::minimize::minimize;
use swsec_fuzz::mutate::mutate;
use swsec_fuzz::targets::FuzzTarget;
use swsec_fuzz::{gen, FuzzConfig};
use swsec_minc::{parse, CompileError};
use swsec_obs::CoverageSink;
use swsec_vm::cpu::RunOutcome;
use swsec_vm::io::IoBus;
use swsec_vm::trace::ExecStats;

// ---------------------------------------------------------------------
// Mutators
// ---------------------------------------------------------------------

fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..96)
}

proptest! {
    /// The mutator is a pure function of its inputs: the same seed over
    /// the same parent/donor/dictionary always yields the same child.
    #[test]
    fn mutator_is_pure(
        seed in any::<u64>(),
        parent in bytes_strategy(),
        donor in bytes_strategy(),
    ) {
        let dict = vec![vec![0xde, 0xad], vec![1, 2, 3, 4]];
        let a = mutate(seed, &parent, &donor, &dict, 96);
        let b = mutate(seed, &parent, &donor, &dict, 96);
        prop_assert_eq!(a, b);
    }

    /// Mutated children never escape the target's length budget and
    /// never collapse to the empty input (which no target accepts).
    #[test]
    fn mutator_respects_length_bounds(
        seed in any::<u64>(),
        parent in bytes_strategy(),
        donor in bytes_strategy(),
        max_len in 1usize..128,
    ) {
        let child = mutate(seed, &parent, &donor, &[], max_len);
        prop_assert!(!child.is_empty());
        prop_assert!(child.len() <= max_len);
    }

    /// The program generator is total and deterministic: every byte
    /// string decodes to the same parseable MinC program every time.
    #[test]
    fn generator_is_total_and_parseable(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let a = gen::program_from_bytes(&bytes);
        let b = gen::program_from_bytes(&bytes);
        prop_assert_eq!(&a, &b);
        prop_assert!(parse(&a).is_ok(), "generated program must parse:\n{}", a);
    }
}

// ---------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------

/// A deterministic target classifying "needle" iff the input contains
/// the 0x7f marker byte — the smallest behaviour a minimizer can be
/// asked to preserve.
#[derive(Default)]
struct MarkerTarget;

impl AttackTarget for MarkerTarget {
    fn execute(&mut self, _seed: u64, input: &[u8]) -> Result<AttemptOutcome, CompileError> {
        Ok(AttemptOutcome {
            outcome: RunOutcome::Halted(u32::from(input.contains(&0x7f))),
            canary_value: None,
            io: IoBus::default(),
            stats: ExecStats::default(),
        })
    }
}

impl FuzzTarget for MarkerTarget {
    fn name(&self) -> &'static str {
        "marker"
    }

    fn run_seed(&self) -> u64 {
        0
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        vec![vec![0u8; 8]]
    }

    fn max_len(&self) -> usize {
        128
    }

    fn attach_coverage(&mut self, _sink: Arc<CoverageSink>) {}

    fn classify(&mut self, outcome: &AttemptOutcome) -> Option<String> {
        matches!(outcome.outcome, RunOutcome::Halted(1)).then(|| "needle".to_string())
    }
}

proptest! {
    /// Minimization preserves the finding class, never grows the
    /// input, and is deterministic for a fixed budget.
    #[test]
    fn minimizer_preserves_the_class(
        prefix in prop::collection::vec(any::<u8>(), 0..40),
        suffix in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut input = prefix;
        input.push(0x7f);
        input.extend_from_slice(&suffix);

        let mut target = MarkerTarget;
        let (min_a, _) = minimize(&mut target, 0, &input, "needle", 512);
        let (min_b, _) = minimize(&mut target, 0, &input, "needle", 512);
        prop_assert_eq!(&min_a, &min_b, "minimization must be deterministic");
        prop_assert!(min_a.len() <= input.len());
        prop_assert!(min_a.contains(&0x7f), "class must survive minimization");
        let out = target.execute(0, &min_a).unwrap();
        prop_assert_eq!(target.classify(&out).as_deref(), Some("needle"));
    }
}

/// The engine's public configuration stays constructible from outside
/// the crate — the shape downstream harnesses depend on.
#[test]
fn fuzz_config_is_reachable_from_the_suite() {
    let cfg = FuzzConfig { master_seed: 1, budget: 0, minimize_budget: 0 };
    assert_eq!(cfg.budget, 0);
}
