//! Umbrella library for the `swsec` workspace examples and integration
//! tests.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! the cross-crate integration tests in `/tests` can address the whole
//! system through a single dependency:
//!
//! ```
//! use swsec_suite::prelude::*;
//!
//! let program = swsec_suite::swsec_minc::parse(
//!     "void main() { write(1, \"hi\", 2); }",
//! ).expect("valid MinC");
//! # let _: MincProgram = program;
//! ```

pub use swsec;
pub use swsec_asm;
pub use swsec_attacks;
pub use swsec_crypto;
pub use swsec_defenses;
pub use swsec_fuzz;
pub use swsec_minc;
pub use swsec_pma;
pub use swsec_vm;

/// Convenience prelude pulling in the names used by nearly every example.
pub mod prelude {
    pub use swsec::prelude::*;
    pub use swsec_minc::Program as MincProgram;
}
